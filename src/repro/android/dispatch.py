"""Event delivery loop: sensors -> hub -> manager -> binder -> handler.

This is the device-side execution path. :func:`charge_trace` converts a
handler's :class:`~repro.games.base.ProcessingTrace` into SoC energy;
the optimization schemes reuse it to charge exactly the work they did
not avoid.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.android.binder import Binder
from repro.android.events import Event, EventType
from repro.android.sensor_hub import SensorHub
from repro.android.sensor_manager import SensorManager
from repro.android.tracing import EventTracer
from repro.soc.energy import TAG_EVENT, EnergyMeter, charge_key_id
from repro.soc.soc import Soc, snapdragon_821

if TYPE_CHECKING:  # pragma: no cover - layering: games sit above android
    from repro.games.base import Game, ProcessingTrace


def charge_trace(soc: Soc, trace: "ProcessingTrace", tag: str = "event") -> None:
    """Charge one handler trace's work to the SoC.

    The trace is an abstract work record; this function is the single
    place that converts it into component energy, so CPU-only or IP-only
    schemes can instead charge just the slices they execute.
    """
    big_cycles = trace.cpu_big_cycles
    little_cycles = trace.cpu_little_cycles
    for func_call in trace.cpu_funcs:
        if func_call.big:
            big_cycles += func_call.cycles
        else:
            little_cycles += func_call.cycles
    if big_cycles:
        soc.cpu.execute(big_cycles, big=True, tag=tag)
    if little_cycles:
        soc.cpu.execute(little_cycles, big=False, tag=tag)
    if trace.memory_bytes:
        soc.memory.transfer(trace.memory_bytes, tag=tag)
    for call in trace.ip_calls:
        soc.ip(call.ip_name).invoke(
            call.work_units, bytes_in=call.bytes_in, bytes_out=call.bytes_out, tag=tag
        )


def charge_upkeep(soc: Soc, game: "Game", event: Event, tag: str = "event") -> int:
    """Charge the game's unavoidable engine upkeep for one event.

    Returns the cycles charged so callers can fold them into coverage
    denominators (upkeep executes under every scheme, snipped or not).
    """
    game.advance_engine(event)
    cycles = game.upkeep_cycles_for(event.event_type)
    if cycles:
        soc.cpu.execute(cycles, big=True, tag=tag)
    for ip_name, units in game.upkeep_ip_units_for(event.event_type).items():
        if units:
            soc.ip(ip_name).invoke(units, bytes_in=128 * 1024, tag=tag)
    return cycles


def charge_delivery(
    soc: Soc,
    hub: SensorHub,
    manager: SensorManager,
    binder: Binder,
    event: Event,
    tag: str = "event",
) -> None:
    """Charge the unavoidable pre-handler pipeline for one event.

    Sensing, hub batching, gesture synthesis and the Binder hop happen
    before any lookup can decide to short-circuit, so every scheme pays
    this cost for every event.
    """
    samples = hub.capture(event, tag=tag)
    manager.synthesize(event, samples, tag=tag)
    binder.transfer(event, tag=tag)


class EventLoop:
    """Baseline device execution: deliver and fully process every event."""

    def __init__(self, soc: Soc, game: "Game", tracer: Optional[EventTracer] = None) -> None:
        self.soc = soc
        self.game = game
        self.tracer = tracer
        self.hub = SensorHub(soc)
        self.manager = SensorManager(soc)
        self.binder = Binder(soc)
        self._events_delivered = 0

    @property
    def events_delivered(self) -> int:
        """How many events have gone through the loop."""
        return self._events_delivered

    def deliver(self, event: Event) -> "ProcessingTrace":
        """Run one event end-to-end, charging every stage to the SoC."""
        if self.tracer is not None:
            self.tracer.record(event)
        charge_delivery(self.soc, self.hub, self.manager, self.binder, event)
        charge_upkeep(self.soc, self.game, event)
        trace = self.game.process(event)
        charge_trace(self.soc, trace)
        self._events_delivered += 1
        return trace


# -- batched fast path --------------------------------------------------


class _PatternRecorder(EnergyMeter):
    """Meter that also captures the interned (key id, joules) stream."""

    def __init__(self) -> None:
        super().__init__()
        self.recorded: List[Tuple[int, float]] = []

    def charge(
        self,
        component: str,
        group,  # ComponentGroup; untyped to match the base signature cheaply
        joules: float,
        tag: str = TAG_EVENT,
    ) -> None:
        super().charge(component, group, joules, tag)
        if joules:
            self.recorded.append((charge_key_id(component, group, tag), joules))


#: Static delivery+upkeep charge patterns keyed by (game name, event
#: type). Every charge those stages emit depends only on the event's
#: *type* — schema nbytes, sensor burst shape, synthesis cycles, and the
#: game class's upkeep tables are all type-level constants — so one
#: recorded sequence replays exactly for every later event of the type.
_COST_PATTERNS: Dict[Tuple[str, EventType], Tuple[Tuple[int, float], ...]] = {}


def delivery_upkeep_pattern(
    game: "Game", event: Event
) -> Tuple[Tuple[int, float], ...]:
    """The exact charge sequence the scalar delivery + upkeep stages emit.

    Recorded once per ``(game, event type)`` by running the scalar
    helpers on a scratch default-profile SoC, which captures the precise
    charge order, values, and zero-skips. Valid for default-profile SoCs
    whose components are awake — true of every session path that opts
    into batching (those paths build their own SoCs and never sleep
    components mid-session; schemes that do sleep stay on scalar calls).
    """
    key = (game.name, event.event_type)
    pattern = _COST_PATTERNS.get(key)
    if pattern is None:
        meter = _PatternRecorder()
        scratch = snapdragon_821(meter=meter)
        charge_delivery(
            scratch,
            SensorHub(scratch),
            SensorManager(scratch),
            Binder(scratch),
            event,
        )
        cycles = game.upkeep_cycles_for(event.event_type)
        if cycles:
            scratch.cpu.execute(cycles, big=True, tag="event")
        for ip_name, units in game.upkeep_ip_units_for(event.event_type).items():
            if units:
                scratch.ip(ip_name).invoke(units, bytes_in=128 * 1024, tag="event")
        pattern = _COST_PATTERNS[key] = tuple(meter.recorded)
    return pattern


class BatchedEventLoop(EventLoop):
    """Baseline loop that pours static cost patterns into the meter.

    Byte-identical to :class:`EventLoop` (asserted by the equivalence
    suite) but skips the sensor/hub/manager object machinery per event:
    delivery and upkeep charges arrive as one precomputed
    ``(key id, joules)`` pattern via
    :meth:`~repro.soc.energy.ColumnarMeter.extend`. Requires the SoC's
    meter to be a :class:`~repro.soc.energy.ColumnarMeter`.
    """

    def deliver(self, event: Event) -> "ProcessingTrace":
        if self.tracer is not None:
            self.tracer.record(event)
        self.game.advance_engine(event)
        self.soc.meter.extend(delivery_upkeep_pattern(self.game, event))
        trace = self.game.process(event)
        charge_trace(self.soc, trace)
        self._events_delivered += 1
        return trace
