"""Random forest classifier (Breiman [6]).

Bootstrap-sampled CART trees with per-split feature subsampling and
majority voting. The paper's PFI cites Breiman's random forests as the
model under the importance measure; this is that model, sized for the
per-event-type profile datasets (thousands of rows, tens of features).

Prediction descends *all* trees at once: the fitted ensemble is packed
into one contiguous node arena (:class:`_ForestArena`) in which leaves
self-loop, so every (tree, row) pair advances one level per numpy step
and the whole forest resolves in ``max_depth`` vectorized iterations
instead of ``n_trees`` separate per-tree walks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ModelNotFittedError
from repro.ml.tree import DecisionTreeClassifier


@dataclass
class _ForestArena:
    """Every tree of a fitted forest in one contiguous node pool.

    Child indices are rebased into the pool and leaves point at
    themselves, so batch descent needs no per-level leaf filtering:
    rows that have already resolved simply spin in place until the
    deepest tree finishes.
    """

    feature: np.ndarray     # int64; -1 marks a leaf
    threshold: np.ndarray   # float64
    left: np.ndarray        # int64 pool index (self for leaves)
    right: np.ndarray       # int64 pool index (self for leaves)
    prediction: np.ndarray  # int64 class index
    roots: np.ndarray       # int64 pool index of each tree's root
    depth: int              # deepest tree's depth

    @classmethod
    def from_trees(cls, trees: Sequence[DecisionTreeClassifier]) -> "_ForestArena":
        features, thresholds, lefts, rights, predictions, roots = [], [], [], [], [], []
        offset = 0
        depth = 0
        for tree in trees:
            flat = tree.flat
            size = flat.feature.size
            left = flat.left + offset
            right = flat.right + offset
            leaf = flat.feature < 0
            self_index = np.arange(offset, offset + size, dtype=np.int64)
            left[leaf] = self_index[leaf]
            right[leaf] = self_index[leaf]
            features.append(flat.feature)
            thresholds.append(flat.threshold)
            lefts.append(left)
            rights.append(right)
            predictions.append(flat.prediction)
            roots.append(offset)
            depth = max(depth, flat.depth)
            offset += size
        return cls(
            feature=np.concatenate(features),
            threshold=np.concatenate(thresholds),
            left=np.concatenate(lefts),
            right=np.concatenate(rights),
            prediction=np.concatenate(predictions),
            roots=np.asarray(roots, dtype=np.int64),
            depth=depth,
        )

    def predict_all(self, features: np.ndarray) -> np.ndarray:
        """Per-tree predictions, shape ``(n_trees, n_rows)``."""
        n_rows = features.shape[0]
        node = np.repeat(self.roots, n_rows)
        rows = np.tile(np.arange(n_rows), len(self.roots))
        for _ in range(self.depth):
            # Leaves carry feature -1 (a harmless last-column read) and
            # self-looping children, so no masking is needed.
            go_left = features[rows, self.feature[node]] <= self.threshold[node]
            node = np.where(go_left, self.left[node], self.right[node])
        return self.prediction[node].reshape(len(self.roots), n_rows)


class RandomForestClassifier:
    """Bagged CART ensemble with majority-vote prediction."""

    def __init__(
        self,
        n_trees: int = 8,
        max_depth: int = 16,
        min_samples_leaf: int = 1,
        max_features: str = "sqrt",
        seed: int = 0,
    ) -> None:
        if n_trees < 1:
            raise ValueError(f"n_trees must be >= 1, got {n_trees}")
        if max_features not in ("sqrt", "all"):
            raise ValueError(f"max_features must be 'sqrt' or 'all', got {max_features!r}")
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self._trees: List[DecisionTreeClassifier] = []
        self._arena: Optional[_ForestArena] = None
        self._n_classes = 0
        #: Out-of-bag accuracy estimate, set by :meth:`fit`; ``None``
        #: when no row was ever out of bag (tiny datasets).
        self.oob_accuracy_: Optional[float] = None

    @property
    def trees(self) -> List[DecisionTreeClassifier]:
        """The fitted ensemble members."""
        return self._trees

    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        sample_weight: Optional[np.ndarray] = None,
        n_classes: Optional[int] = None,
    ) -> "RandomForestClassifier":
        """Fit all trees on bootstrap resamples; returns self."""
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.int64)
        n_rows, n_features = features.shape
        if sample_weight is None:
            sample_weight = np.ones(n_rows, dtype=np.float64)
        self._n_classes = int(n_classes if n_classes is not None else labels.max() + 1)
        per_split = (
            max(1, int(math.sqrt(n_features)))
            if self.max_features == "sqrt"
            else None
        )
        rng = np.random.default_rng(self.seed)
        self._trees = []
        self._arena = None
        oob_votes = np.zeros((n_rows, self._n_classes), dtype=np.int32)
        for tree_index in range(self.n_trees):
            rows = rng.integers(0, n_rows, size=n_rows)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=per_split,
                seed=self.seed * 1000 + tree_index,
            )
            tree.fit(
                features[rows], labels[rows], sample_weight[rows],
                n_classes=self._n_classes,
            )
            self._trees.append(tree)
            in_bag = np.zeros(n_rows, dtype=bool)
            in_bag[rows] = True
            out_of_bag = np.nonzero(~in_bag)[0]
            if out_of_bag.size:
                predictions = tree.predict(features[out_of_bag])
                oob_votes[out_of_bag, predictions] += 1
        voted = oob_votes.sum(axis=1) > 0
        if voted.any():
            oob_predictions = oob_votes[voted].argmax(axis=1)
            self.oob_accuracy_ = float(
                (oob_predictions == labels[voted]).mean()
            )
        else:
            self.oob_accuracy_ = None
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Majority-vote class index per row."""
        if not self._trees:
            raise ModelNotFittedError("random forest has not been fitted")
        features = np.asarray(features, dtype=np.float64)
        if self._arena is None:
            self._arena = _ForestArena.from_trees(self._trees)
        n_rows = features.shape[0]
        predictions = self._arena.predict_all(features)
        votes = np.bincount(
            ((np.arange(n_rows) * self._n_classes)[None, :] + predictions).ravel(),
            minlength=n_rows * self._n_classes,
        ).reshape(n_rows, self._n_classes)
        return votes.argmax(axis=1)

    def predict_reference(self, features: np.ndarray) -> np.ndarray:
        """Majority vote via per-row tree walks (golden reference)."""
        if not self._trees:
            raise ModelNotFittedError("random forest has not been fitted")
        features = np.asarray(features, dtype=np.float64)
        votes = np.zeros((features.shape[0], self._n_classes), dtype=np.int32)
        for tree in self._trees:
            predictions = tree.predict_reference(features)
            votes[np.arange(features.shape[0]), predictions] += 1
        return votes.argmax(axis=1)
