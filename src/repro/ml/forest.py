"""Random forest classifier (Breiman [6]).

Bootstrap-sampled CART trees with per-split feature subsampling and
majority voting. The paper's PFI cites Breiman's random forests as the
model under the importance measure; this is that model, sized for the
per-event-type profile datasets (thousands of rows, tens of features).
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro.errors import ModelNotFittedError
from repro.ml.tree import DecisionTreeClassifier


class RandomForestClassifier:
    """Bagged CART ensemble with majority-vote prediction."""

    def __init__(
        self,
        n_trees: int = 8,
        max_depth: int = 16,
        min_samples_leaf: int = 1,
        max_features: str = "sqrt",
        seed: int = 0,
    ) -> None:
        if n_trees < 1:
            raise ValueError(f"n_trees must be >= 1, got {n_trees}")
        if max_features not in ("sqrt", "all"):
            raise ValueError(f"max_features must be 'sqrt' or 'all', got {max_features!r}")
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self._trees: List[DecisionTreeClassifier] = []
        self._n_classes = 0
        #: Out-of-bag accuracy estimate, set by :meth:`fit`; ``None``
        #: when no row was ever out of bag (tiny datasets).
        self.oob_accuracy_: Optional[float] = None

    @property
    def trees(self) -> List[DecisionTreeClassifier]:
        """The fitted ensemble members."""
        return self._trees

    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        sample_weight: Optional[np.ndarray] = None,
        n_classes: Optional[int] = None,
    ) -> "RandomForestClassifier":
        """Fit all trees on bootstrap resamples; returns self."""
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.int64)
        n_rows, n_features = features.shape
        if sample_weight is None:
            sample_weight = np.ones(n_rows, dtype=np.float64)
        self._n_classes = int(n_classes if n_classes is not None else labels.max() + 1)
        per_split = (
            max(1, int(math.sqrt(n_features)))
            if self.max_features == "sqrt"
            else None
        )
        rng = np.random.default_rng(self.seed)
        self._trees = []
        oob_votes = np.zeros((n_rows, self._n_classes), dtype=np.int32)
        for tree_index in range(self.n_trees):
            rows = rng.integers(0, n_rows, size=n_rows)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=per_split,
                seed=self.seed * 1000 + tree_index,
            )
            tree.fit(
                features[rows], labels[rows], sample_weight[rows],
                n_classes=self._n_classes,
            )
            self._trees.append(tree)
            out_of_bag = np.setdiff1d(
                np.arange(n_rows), np.unique(rows), assume_unique=True
            )
            if out_of_bag.size:
                predictions = tree.predict(features[out_of_bag])
                oob_votes[out_of_bag, predictions] += 1
        voted = oob_votes.sum(axis=1) > 0
        if voted.any():
            oob_predictions = oob_votes[voted].argmax(axis=1)
            self.oob_accuracy_ = float(
                (oob_predictions == labels[voted]).mean()
            )
        else:
            self.oob_accuracy_ = None
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Majority-vote class index per row."""
        if not self._trees:
            raise ModelNotFittedError("random forest has not been fitted")
        features = np.asarray(features, dtype=np.float64)
        votes = np.zeros((features.shape[0], self._n_classes), dtype=np.int32)
        for tree in self._trees:
            predictions = tree.predict(features)
            votes[np.arange(features.shape[0]), predictions] += 1
        return votes.argmax(axis=1)
