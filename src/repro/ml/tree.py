"""CART decision-tree classifier (gini impurity, threshold splits).

A deliberately compact, deterministic implementation: candidate split
thresholds are value quantiles (capped per node), features can be
subsampled per split (for forests), and sample weights are honoured
throughout. High-cardinality hashed features still split usefully
because equal values always land on the same side of a threshold.

Prediction runs on a flattened structure-of-arrays form of the tree
(:class:`FlatTree`): whole batches descend one level per numpy step
instead of walking nodes row by row in Python. The recursive walk
survives as :meth:`DecisionTreeClassifier.predict_reference`, the
golden reference the equivalence tests compare against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import ModelNotFittedError

#: Candidate thresholds examined per (node, feature).
MAX_THRESHOLDS = 16


@dataclass
class _Node:
    """One tree node; leaves have ``feature == -1``."""

    feature: int
    threshold: float
    prediction: int
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.feature < 0


@dataclass
class FlatTree:
    """A fitted tree flattened into contiguous parallel arrays.

    Node ``i`` splits on ``feature[i]`` at ``threshold[i]`` and sends
    rows to ``left[i]``/``right[i]``; leaves have ``feature[i] == -1``
    and children ``-1``. Node 0 is the root and children always follow
    their parent (preorder), so batch descent touches memory forward.
    """

    feature: np.ndarray     # int64; -1 marks a leaf
    threshold: np.ndarray   # float64
    left: np.ndarray        # int64 child index; -1 for leaves
    right: np.ndarray       # int64 child index; -1 for leaves
    prediction: np.ndarray  # int64 class index
    depth: int              # root-to-deepest-leaf edge count

    @classmethod
    def from_root(cls, root: _Node) -> "FlatTree":
        """Flatten a linked node tree (preorder, iterative)."""
        feature: List[int] = []
        threshold: List[float] = []
        left: List[int] = []
        right: List[int] = []
        prediction: List[int] = []
        max_depth = 0
        stack = [(root, -1, False, 0)]  # (node, parent slot, is right, depth)
        while stack:
            node, parent, is_right, depth = stack.pop()
            index = len(feature)
            max_depth = max(max_depth, depth)
            if parent >= 0:
                (right if is_right else left)[parent] = index
            feature.append(node.feature)
            threshold.append(node.threshold)
            left.append(-1)
            right.append(-1)
            prediction.append(node.prediction)
            if not node.is_leaf:
                # Push right first so the left child is laid out
                # immediately after its parent.
                stack.append((node.right, index, True, depth + 1))
                stack.append((node.left, index, False, depth + 1))
        return cls(
            feature=np.asarray(feature, dtype=np.int64),
            threshold=np.asarray(threshold, dtype=np.float64),
            left=np.asarray(left, dtype=np.int64),
            right=np.asarray(right, dtype=np.int64),
            prediction=np.asarray(prediction, dtype=np.int64),
            depth=max_depth,
        )

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Batch prediction: all rows descend one level per step."""
        node = np.zeros(features.shape[0], dtype=np.int64)
        pending = np.nonzero(self.feature[node] >= 0)[0]
        while pending.size:
            current = node[pending]
            go_left = (
                features[pending, self.feature[current]]
                <= self.threshold[current]
            )
            node[pending] = np.where(
                go_left, self.left[current], self.right[current]
            )
            pending = pending[self.feature[node[pending]] >= 0]
        return self.prediction[node]


def _weighted_gini(counts: np.ndarray) -> float:
    """Gini impurity of a weighted class-count vector."""
    total = counts.sum()
    if total <= 0:
        return 0.0
    proportions = counts / total
    return float(1.0 - np.dot(proportions, proportions))


class DecisionTreeClassifier:
    """A CART classifier over float features and dense int labels."""

    def __init__(
        self,
        max_depth: int = 16,
        min_samples_leaf: int = 1,
        max_features: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        if min_samples_leaf < 1:
            raise ValueError(f"min_samples_leaf must be >= 1, got {min_samples_leaf}")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self._root: Optional[_Node] = None
        self._flat: Optional[FlatTree] = None
        self._n_classes = 0
        self._node_count = 0

    @property
    def node_count(self) -> int:
        """Number of nodes in the fitted tree."""
        return self._node_count

    @property
    def flat(self) -> FlatTree:
        """The flattened form of the fitted tree (built lazily)."""
        if self._root is None:
            raise ModelNotFittedError("decision tree has not been fitted")
        if self._flat is None:
            self._flat = FlatTree.from_root(self._root)
        return self._flat

    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        sample_weight: Optional[np.ndarray] = None,
        n_classes: Optional[int] = None,
    ) -> "DecisionTreeClassifier":
        """Grow the tree; returns self for chaining."""
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.int64)
        if sample_weight is None:
            sample_weight = np.ones(len(labels), dtype=np.float64)
        self._n_classes = int(n_classes if n_classes is not None else labels.max() + 1)
        rng = np.random.default_rng(self.seed)
        self._node_count = 0
        self._root = self._grow(features, labels, sample_weight, depth=0, rng=rng)
        self._flat = FlatTree.from_root(self._root)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Class index per row (vectorized batch descent)."""
        if self._root is None:
            raise ModelNotFittedError("decision tree has not been fitted")
        features = np.asarray(features, dtype=np.float64)
        return self.flat.predict(features)

    def predict_reference(self, features: np.ndarray) -> np.ndarray:
        """Class index per row via the original per-row node walk.

        Kept as the golden reference: the equivalence suite asserts
        :meth:`predict` matches this exactly on arbitrary inputs.
        """
        if self._root is None:
            raise ModelNotFittedError("decision tree has not been fitted")
        features = np.asarray(features, dtype=np.float64)
        out = np.empty(features.shape[0], dtype=np.int64)
        for row_index in range(features.shape[0]):
            node = self._root
            row = features[row_index]
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[row_index] = node.prediction
        return out

    # -- growth ---------------------------------------------------------

    def _grow(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        weight: np.ndarray,
        depth: int,
        rng: np.random.Generator,
    ) -> _Node:
        self._node_count += 1
        counts = np.bincount(labels, weights=weight, minlength=self._n_classes)
        prediction = int(counts.argmax())
        if (
            depth >= self.max_depth
            or len(labels) < 2 * self.min_samples_leaf
            or _weighted_gini(counts) == 0.0
        ):
            return _Node(feature=-1, threshold=0.0, prediction=prediction)
        split = self._best_split(features, labels, weight, counts, rng)
        if split is None:
            return _Node(feature=-1, threshold=0.0, prediction=prediction)
        feature, threshold = split
        mask = features[:, feature] <= threshold
        left = self._grow(features[mask], labels[mask], weight[mask], depth + 1, rng)
        right = self._grow(features[~mask], labels[~mask], weight[~mask], depth + 1, rng)
        return _Node(feature=feature, threshold=threshold, prediction=prediction,
                     left=left, right=right)

    def _best_split(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        weight: np.ndarray,
        parent_counts: np.ndarray,
        rng: np.random.Generator,
    ) -> Optional[tuple]:
        """Best (feature, threshold) by gini gain, all thresholds at once.

        For each candidate feature the per-threshold class counts — the
        O(rows) part the scalar scan re-did per threshold — come from a
        single vectorized pass: a (rows x thresholds) comparison matrix
        and one ``np.add.at`` accumulation, which sums weights in row
        order exactly like the ``np.bincount`` calls it replaces. The
        gini gain itself is then evaluated per threshold with the same
        arithmetic (and the same tie-breaking ``>``) as before, so the
        chosen split is bit-identical to the scalar implementation.
        """
        n_features = features.shape[1]
        if self.max_features is not None and self.max_features < n_features:
            candidates = rng.choice(n_features, size=self.max_features, replace=False)
        else:
            candidates = np.arange(n_features)
        parent_impurity = _weighted_gini(parent_counts)
        total_weight = weight.sum()
        n_rows = len(labels)
        best = None
        best_gain = 1e-12
        for feature in candidates:
            column = features[:, feature]
            values = np.unique(column)
            if len(values) < 2:
                continue
            if len(values) > MAX_THRESHOLDS:
                quantiles = np.linspace(0, 1, MAX_THRESHOLDS + 2)[1:-1]
                thresholds = np.unique(np.quantile(values, quantiles))
            else:
                thresholds = (values[:-1] + values[1:]) / 2.0
            mask = column[:, None] <= thresholds[None, :]
            left_n = mask.sum(axis=0)
            valid = (left_n >= self.min_samples_leaf) & (
                n_rows - left_n >= self.min_samples_leaf
            )
            if not valid.any():
                continue
            all_left_counts = np.zeros((self._n_classes, len(thresholds)))
            np.add.at(all_left_counts, labels, mask * weight[:, None])
            for pick in np.nonzero(valid)[0]:
                left_counts = np.ascontiguousarray(all_left_counts[:, pick])
                right_counts = parent_counts - left_counts
                left_weight = left_counts.sum()
                right_weight = total_weight - left_weight
                child_impurity = (
                    left_weight * _weighted_gini(left_counts)
                    + right_weight * _weighted_gini(right_counts)
                ) / total_weight
                gain = parent_impurity - child_impurity
                if gain > best_gain:
                    best_gain = gain
                    best = (int(feature), float(thresholds[pick]))
        return best
