"""Permutation feature importance (Fisher/Rudin/Dominici [7]).

Model-agnostic: for each feature column, shuffle it and measure how much
held-out accuracy drops. Features whose permutation costs nothing are
unnecessary — exactly the inputs SNIP trims from its lookup table.

The fast path permutes one column *in place* and restores it afterwards
instead of copying the whole feature matrix once per (feature, repeat);
:func:`permutation_importance_reference` keeps the original copying
implementation as the golden reference for the equivalence suite. Both
consume the supplied rng identically, so they yield identical results
under the same seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.ml.metrics import accuracy


@dataclass(frozen=True)
class FeatureImportance:
    """Importance of one feature: mean accuracy drop under permutation."""

    name: str
    index: int
    importance: float


def permutation_importance(
    model,
    features: np.ndarray,
    labels: np.ndarray,
    feature_names: Sequence[str],
    rng: np.random.Generator,
    repeats: int = 3,
    sample_weight: Optional[np.ndarray] = None,
) -> List[FeatureImportance]:
    """Rank features by mean accuracy drop over ``repeats`` shuffles.

    Returns one entry per feature, sorted most-important first. Negative
    drops (noise) are clamped to zero so downstream selection can treat
    importances as a mass to keep.

    Only one column is ever shuffled at a time, directly inside the
    feature matrix; the original column is restored before moving on,
    so ``features`` is unchanged on return (even on error).
    """
    features = np.array(features, dtype=np.float64, copy=True)
    labels = np.asarray(labels, dtype=np.int64)
    baseline = accuracy(model.predict(features), labels, sample_weight)
    importances: List[FeatureImportance] = []
    for index, name in enumerate(feature_names):
        column = features[:, index].copy()
        if column.size == 0 or column.min() == column.max():
            # Constant columns cannot carry information.
            importances.append(FeatureImportance(name=name, index=index, importance=0.0))
            continue
        drops = []
        for _ in range(repeats):
            features[:, index] = rng.permutation(column)
            permuted = accuracy(model.predict(features), labels, sample_weight)
            drops.append(baseline - permuted)
        features[:, index] = column
        importances.append(
            FeatureImportance(
                name=name, index=index, importance=max(0.0, float(np.mean(drops)))
            )
        )
    importances.sort(key=lambda imp: (-imp.importance, imp.index))
    return importances


def permutation_importance_reference(
    model,
    features: np.ndarray,
    labels: np.ndarray,
    feature_names: Sequence[str],
    rng: np.random.Generator,
    repeats: int = 3,
    sample_weight: Optional[np.ndarray] = None,
) -> List[FeatureImportance]:
    """The original full-matrix-copy implementation (golden reference).

    Identical semantics and rng consumption to
    :func:`permutation_importance`; it exists so the equivalence tests
    can assert the in-place rewrite changed nothing.
    """
    features = np.asarray(features, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    baseline = accuracy(model.predict(features), labels, sample_weight)
    importances: List[FeatureImportance] = []
    for index, name in enumerate(feature_names):
        column = features[:, index].copy()
        if len(np.unique(column)) < 2:
            importances.append(FeatureImportance(name=name, index=index, importance=0.0))
            continue
        drops = []
        for _ in range(repeats):
            shuffled = features.copy()
            shuffled[:, index] = rng.permutation(column)
            permuted = accuracy(model.predict(shuffled), labels, sample_weight)
            drops.append(baseline - permuted)
        importances.append(
            FeatureImportance(
                name=name, index=index, importance=max(0.0, float(np.mean(drops)))
            )
        )
    importances.sort(key=lambda imp: (-imp.importance, imp.index))
    return importances
