"""Permutation feature importance (Fisher/Rudin/Dominici [7]).

Model-agnostic: for each feature column, shuffle it and measure how much
held-out accuracy drops. Features whose permutation costs nothing are
unnecessary — exactly the inputs SNIP trims from its lookup table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.ml.metrics import accuracy


@dataclass(frozen=True)
class FeatureImportance:
    """Importance of one feature: mean accuracy drop under permutation."""

    name: str
    index: int
    importance: float


def permutation_importance(
    model,
    features: np.ndarray,
    labels: np.ndarray,
    feature_names: Sequence[str],
    rng: np.random.Generator,
    repeats: int = 3,
    sample_weight: Optional[np.ndarray] = None,
) -> List[FeatureImportance]:
    """Rank features by mean accuracy drop over ``repeats`` shuffles.

    Returns one entry per feature, sorted most-important first. Negative
    drops (noise) are clamped to zero so downstream selection can treat
    importances as a mass to keep.
    """
    features = np.asarray(features, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    baseline = accuracy(model.predict(features), labels, sample_weight)
    importances: List[FeatureImportance] = []
    for index, name in enumerate(feature_names):
        column = features[:, index].copy()
        if len(np.unique(column)) < 2:
            # Constant columns cannot carry information.
            importances.append(FeatureImportance(name=name, index=index, importance=0.0))
            continue
        drops = []
        for _ in range(repeats):
            shuffled = features.copy()
            shuffled[:, index] = rng.permutation(column)
            permuted = accuracy(model.predict(shuffled), labels, sample_weight)
            drops.append(baseline - permuted)
        importances.append(
            FeatureImportance(
                name=name, index=index, importance=max(0.0, float(np.mean(drops)))
            )
        )
    importances.sort(key=lambda imp: (-imp.importance, imp.index))
    return importances
