"""Field-value -> numeric feature encoding.

Profile records carry heterogeneous values: ints, floats, strings,
tuples (board layouts), None. Trees need numbers, and — crucially for
memoization — *equal values must encode equally* across the whole
dataset. Numbers pass through; everything else is hashed to a stable
64-bit integer and mapped into float space. Hash encoding destroys
ordering, which costs the trees some split quality on composite values,
but equality structure (the thing memoization keys on) is preserved
exactly.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, List, Sequence

import numpy as np

#: Sentinel feature value for "this input location was absent".
ABSENT = -1.0


def encode_value(value: Any) -> float:
    """Encode one field value as a float, preserving equality."""
    if value is None:
        return ABSENT
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        # Large ints (digests) must stay distinguishable after float
        # conversion; fold them into 48 bits first.
        if isinstance(value, int) and abs(value) > 2**48:
            value = value % (2**48)
        return float(value)
    digest = hashlib.blake2b(repr(value).encode("utf-8"), digest_size=6).digest()
    return float(int.from_bytes(digest, "little"))


class FeatureEncoder:
    """Encodes dict-like records into fixed-order feature vectors."""

    def __init__(self, feature_names: Sequence[str]) -> None:
        if len(set(feature_names)) != len(feature_names):
            raise ValueError("duplicate feature names")
        self.feature_names: List[str] = list(feature_names)
        self._index: Dict[str, int] = {
            name: position for position, name in enumerate(self.feature_names)
        }

    @property
    def width(self) -> int:
        """Number of features per vector."""
        return len(self.feature_names)

    def index_of(self, name: str) -> int:
        """Column index of a feature."""
        return self._index[name]

    def encode_record(self, record: Dict[str, Any]) -> np.ndarray:
        """One record -> feature vector; missing keys become ABSENT."""
        row = np.full(self.width, ABSENT, dtype=np.float64)
        for name, value in record.items():
            position = self._index.get(name)
            if position is not None:
                row[position] = encode_value(value)
        return row

    def encode_records(self, records: Sequence[Dict[str, Any]]) -> np.ndarray:
        """Many records -> (n, width) matrix."""
        matrix = np.full((len(records), self.width), ABSENT, dtype=np.float64)
        for row_index, record in enumerate(records):
            matrix[row_index] = self.encode_record(record)
        return matrix
