"""Machine-learning substrate for SNIP's feature selection.

scikit-learn is not available in this environment, so the pieces PFI
needs are implemented from scratch on numpy: a CART decision tree, a
Breiman random forest [6], and model-agnostic permutation feature
importance [7]. The implementations favour clarity and determinism
(seeded everywhere) over raw speed; profile datasets are split per event
type, which keeps them comfortably small.
"""

from repro.ml.dataset import Dataset
from repro.ml.encoding import FeatureEncoder, encode_value
from repro.ml.forest import RandomForestClassifier
from repro.ml.metrics import accuracy, majority_class_accuracy
from repro.ml.permutation import permutation_importance
from repro.ml.tree import DecisionTreeClassifier

__all__ = [
    "Dataset",
    "DecisionTreeClassifier",
    "FeatureEncoder",
    "RandomForestClassifier",
    "accuracy",
    "encode_value",
    "majority_class_accuracy",
    "permutation_importance",
]
