"""Classification metrics used by PFI and the error analyses."""

from __future__ import annotations

from typing import Optional

import numpy as np


def accuracy(
    predicted: np.ndarray,
    actual: np.ndarray,
    sample_weight: Optional[np.ndarray] = None,
) -> float:
    """(Weighted) fraction of correct predictions."""
    predicted = np.asarray(predicted)
    actual = np.asarray(actual)
    if predicted.shape != actual.shape:
        raise ValueError(
            f"shape mismatch: {predicted.shape} vs {actual.shape}"
        )
    correct = (predicted == actual).astype(np.float64)
    if sample_weight is None:
        return float(correct.mean())
    weight = np.asarray(sample_weight, dtype=np.float64)
    total = weight.sum()
    if total <= 0:
        return 0.0
    return float(np.dot(correct, weight) / total)


def majority_class_accuracy(
    labels: np.ndarray, sample_weight: Optional[np.ndarray] = None
) -> float:
    """Accuracy of always predicting the most common class.

    The floor any useful model must beat; PFI curves are read against it.
    """
    labels = np.asarray(labels, dtype=np.int64)
    counts = np.bincount(
        labels,
        weights=None if sample_weight is None else np.asarray(sample_weight),
    )
    total = counts.sum()
    if total <= 0:
        return 0.0
    return float(counts.max() / total)
