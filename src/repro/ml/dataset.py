"""Tabular dataset container for the PFI pipeline."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import DatasetError


class Dataset:
    """Feature matrix + integer class labels + optional sample weights.

    Labels are arbitrary hashable objects at the API boundary (output
    signatures, class digests); internally they are mapped to dense
    class indices so models can use ``bincount``-style counting.
    """

    def __init__(
        self,
        feature_names: Sequence[str],
        features: np.ndarray,
        labels: Sequence[object],
        sample_weight: Optional[Sequence[float]] = None,
    ) -> None:
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2:
            raise DatasetError(f"features must be 2-D, got shape {features.shape}")
        if features.shape[1] != len(feature_names):
            raise DatasetError(
                f"{len(feature_names)} feature names but {features.shape[1]} columns"
            )
        if features.shape[0] != len(labels):
            raise DatasetError(
                f"{features.shape[0]} rows but {len(labels)} labels"
            )
        if features.shape[0] == 0:
            raise DatasetError("dataset has no rows")
        self.feature_names: List[str] = list(feature_names)
        self.features = features
        self.classes: List[object] = sorted(set(labels), key=repr)
        class_index: Dict[object, int] = {
            label: position for position, label in enumerate(self.classes)
        }
        self.labels = np.asarray([class_index[label] for label in labels], dtype=np.int64)
        if sample_weight is None:
            self.sample_weight = np.ones(features.shape[0], dtype=np.float64)
        else:
            weight = np.asarray(sample_weight, dtype=np.float64)
            if weight.shape != (features.shape[0],):
                raise DatasetError("sample_weight length mismatch")
            if (weight < 0).any():
                raise DatasetError("sample weights must be non-negative")
            self.sample_weight = weight

    @property
    def n_rows(self) -> int:
        """Number of samples."""
        return self.features.shape[0]

    @property
    def n_features(self) -> int:
        """Number of feature columns."""
        return self.features.shape[1]

    @property
    def n_classes(self) -> int:
        """Number of distinct labels."""
        return len(self.classes)

    def class_of(self, index: int) -> object:
        """Original label object for a dense class index."""
        return self.classes[index]

    def split(
        self, train_fraction: float, rng: np.random.Generator
    ) -> Tuple["Dataset", "Dataset"]:
        """Random train/test row split (labels re-share the class map)."""
        if not 0.0 < train_fraction < 1.0:
            raise DatasetError(f"train_fraction out of (0,1): {train_fraction}")
        order = rng.permutation(self.n_rows)
        cut = max(1, min(self.n_rows - 1, int(self.n_rows * train_fraction)))
        train_rows, test_rows = order[:cut], order[cut:]
        return self._subset(train_rows), self._subset(test_rows)

    def _subset(self, rows: np.ndarray) -> "Dataset":
        subset = Dataset.__new__(Dataset)
        subset.feature_names = self.feature_names
        subset.features = self.features[rows]
        subset.classes = self.classes
        subset.labels = self.labels[rows]
        subset.sample_weight = self.sample_weight[rows]
        return subset
