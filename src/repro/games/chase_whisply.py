"""Chase Whisply: AR ghost-hunting through the camera [11].

The camera feed is processed continuously to build a surface map that
AR ghosts are composited onto; the player aims by tilting the phone and
shoots by tapping. The camera/vision path is live data — its CPU work is
dynamic and offers almost nothing for function-level reuse, which is why
the paper measures Max CPU at just 0.5% on this game — but scene
processing when neither the scene nor the aim changed is classic
redundant event processing.

The surface map's size tracks scene clutter (600 B in an empty room up
to ~118 kB in a cluttered one): Fig. 7c's dynamism example.
"""

from __future__ import annotations

from repro.android.events import EventType
from repro.games.base import Game, HandlerContext, mix_values
from repro.games.common import bucket, haptic_buzz, play_sound, render_frame

AIM_BUCKETS = 24
#: Degrees per aim bucket (360 / 24).
AIM_STEP = 15.0
MAX_AMMO = 6
COMPLEXITY_BUCKETS = 32


def surface_map_bytes(complexity_bucket: int) -> int:
    """Surface map size grows with scene clutter (Fig. 7c)."""
    return 600 + complexity_bucket * 3_800


class ChaseWhisply(Game):
    """Camera-driven AR shooter: scan, aim, shoot."""

    name = "chase_whisply"
    handled_event_types = (EventType.CAMERA_FRAME, EventType.GYRO, EventType.TOUCH)
    upkeep_ip_units = {EventType.CAMERA_FRAME: {"gpu": 5.0, "isp": 6.0}}
    upkeep_cycles = {
        EventType.CAMERA_FRAME: 14_000_000,
        EventType.GYRO: 1_000_000,
        EventType.TOUCH: 100_000,
    }

    def build_state(self) -> None:
        self.state.declare("surface_map", self.seed & 0xFFFF, surface_map_bytes(1))
        # Engine-maintained checksum of the surface map: AR frameworks
        # keep a cheap version stamp so clients can detect scene change
        # without diffing the buffer.
        self.state.declare("map_digest", self.seed & 0xFFFF, 4)
        self.state.declare("room_id", self.seed % 5, 1)
        self.state.declare("ghost_x", 6, 1)
        self.state.declare("ghost_y", 12, 1)
        self.state.declare("ghost_visible", 0, 1)
        self.state.declare("aim_a", 0, 1)
        self.state.declare("aim_b", 12, 1)
        self.state.declare("ammo", MAX_AMMO, 1)
        self.state.declare("score", 0, 4)

    def on_event(self, ctx: HandlerContext) -> None:
        event_type = ctx.trace.event_type
        if event_type is EventType.CAMERA_FRAME:
            self._on_camera(ctx)
        elif event_type is EventType.GYRO:
            self._on_gyro(ctx)
        else:
            self._on_shoot(ctx)

    def _on_camera(self, ctx: HandlerContext) -> None:
        complexity = ctx.ev("scene_complexity")
        motion = ctx.ev("motion_score")
        focus = ctx.ev("focus_zone")
        # The ISP already processed this frame upstream (charged as
        # delivery upkeep); the handler consumes the descriptor and the
        # decoded buffer from memory.
        ctx.mem(2 * 1024 * 1024)
        # Feature extraction over the frame: dynamic, data-dependent CPU
        # work — deliberately *not* a cpu_func (nothing to memoize).
        ctx.cpu(18_000_000)
        roi_a = ctx.ev(f"roi_{focus % 25}")
        roi_b = ctx.ev(f"roi_{(focus + 1) % 25}")
        roi_c = ctx.ev(f"roi_{(focus + 2) % 25}")
        room = ctx.hist("room_id")
        complexity_bucket = min(COMPLEXITY_BUCKETS - 1, bucket(complexity, 8))
        new_map = mix_values("map", room, complexity_bucket, roi_a, roi_b, roi_c) & 0xFFFF
        # The AR pipeline rebuilds the map and recomposites every frame;
        # when the player is standing still the outputs are identical to
        # the previous frame's (the redundant AR case).
        ctx.out_hist("surface_map", new_map, nbytes=surface_map_bytes(complexity_bucket))
        ctx.out_hist("map_digest", new_map)
        ghost_x = ctx.hist("ghost_x")
        ghost_y = ctx.hist("ghost_y")
        # The aiming reticle lives on its own overlay layer (drawn by
        # the gyro handler); the AR composite depends only on the scene.
        content = mix_values("ar", new_map, ghost_x, ghost_y) & 0xFFFFFFFF
        render_frame(ctx, content, gpu_units=21.0, compose_cycles=6_000_000,
                     frame_bytes=1024 * 1024)

    def _on_gyro(self, ctx: HandlerContext) -> None:
        alpha = ctx.ev("alpha")
        beta = ctx.ev("beta")
        ctx.cpu(120_000)  # sensor fusion glue
        new_a = bucket(alpha % 360.0, AIM_STEP)
        new_b = bucket(beta % 360.0, AIM_STEP)
        # Sensor fusion and reticle update run for every gyro event;
        # wobble within the current aim bucket reproduces the same aim.
        ctx.out_hist("aim_a", new_a)
        ctx.out_hist("aim_b", new_b)
        ghost_x = ctx.hist("ghost_x")
        ghost_y = ctx.hist("ghost_y")
        visible = int(abs(new_a - ghost_x) <= 1 and abs(new_b - ghost_y) <= 1)
        ctx.out_hist("ghost_visible", visible)
        content = mix_values("reticle", new_a, new_b, visible) & 0xFFFFFFFF
        render_frame(ctx, content, gpu_units=1.2, compose_cycles=600_000)

    def _on_shoot(self, ctx: HandlerContext) -> None:
        action = ctx.ev("action")
        ctx.cpu(30_000)
        if action != 0:
            return
        ammo = ctx.hist("ammo")
        if ammo == 0:
            # Dry-fire click: same cue as the last dry fire -> no change.
            ctx.out_temp("audio", 99, 16)
            return
        visible = ctx.hist("ghost_visible")
        score = ctx.hist("score")
        ctx.cpu_func("ballistics", (visible, ammo), 200_000)
        if visible:
            new_score = score + 100
            ctx.out_hist("score", new_score)
            ctx.out_hist("ghost_x", mix_values("gx", new_score) % AIM_BUCKETS)
            ctx.out_hist("ghost_y", mix_values("gy", new_score) % AIM_BUCKETS)
            ctx.out_hist("ghost_visible", 0)
            ctx.out_hist("ammo", MAX_AMMO)
            play_sound(ctx, sound_id=31)
            haptic_buzz(ctx, pattern=6)
            content = mix_values("capture", new_score) & 0xFFFFFFFF
            render_frame(ctx, content, gpu_units=3.0)
        else:
            ctx.out_hist("ammo", ammo - 1)
            play_sound(ctx, sound_id=32)
