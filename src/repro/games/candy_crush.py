"""Candy Crush: swipe-based match-three [31].

An 8x8 board of five candy colours; a swipe swaps two adjacent candies
and is only valid if it creates a line of three. Invalid swipes leave
the board untouched — a large useless-event source — and between moves
the board idles under a four-phase shimmer animation whose frames repeat
endlessly, which is why the paper finds Candy Crush the *most*
short-circuitable workload (61% of execution, Fig. 11b).

Level changes pull a fresh asset bundle from the network: the rare,
megabyte-sized ``In.Extern`` reads of Fig. 7a.
"""

from __future__ import annotations

from typing import FrozenSet, Tuple

from repro.android.events import EventType
from repro.games.base import Game, HandlerContext, mix_values
from repro.games.common import haptic_buzz, play_sound, render_frame

SIZE = 8
COLORS = 5
CELL_PX = 1440 // SIZE
#: Swipe octants (0=N .. 7=NW) mapped to board row/col deltas; diagonal
#: octants snap to the nearest axis like the real game does.
_OCTANT_DELTAS = {
    0: (-1, 0), 1: (-1, 0), 2: (0, 1), 3: (1, 0),
    4: (1, 0), 5: (1, 0), 6: (0, -1), 7: (-1, 0),
}
MOVES_PER_LEVEL = 24
CASCADE_TICKS = 5


def deal_board(seed: int) -> Tuple[int, ...]:
    """Deterministic starting board with no pre-made matches.

    Constructive fill: each cell avoids completing a line of three with
    its two left and two upper neighbours, which with five colours is
    always possible.
    """
    board = []
    for index in range(SIZE * SIZE):
        row, col = divmod(index, SIZE)
        candidate = mix_values("cell", seed, index) % COLORS
        for salt in range(COLORS):
            candidate = (mix_values("cell", seed, index) + salt) % COLORS
            row_match = (
                col >= 2
                and board[index - 1] == candidate
                and board[index - 2] == candidate
            )
            col_match = (
                row >= 2
                and board[index - SIZE] == candidate
                and board[index - 2 * SIZE] == candidate
            )
            if not row_match and not col_match:
                break
        board.append(candidate)
    return tuple(board)


def find_matches(board: Tuple[int, ...]) -> FrozenSet[int]:
    """All cells participating in a horizontal/vertical line of >=3."""
    hits = set()
    for row in range(SIZE):
        for col in range(SIZE - 2):
            base = row * SIZE + col
            if board[base] == board[base + 1] == board[base + 2]:
                hits.update((base, base + 1, base + 2))
    for col in range(SIZE):
        for row in range(SIZE - 2):
            base = row * SIZE + col
            if board[base] == board[base + SIZE] == board[base + 2 * SIZE]:
                hits.update((base, base + SIZE, base + 2 * SIZE))
    return frozenset(hits)


def collapse(board: Tuple[int, ...], removed: FrozenSet[int], fill_seed: int) -> Tuple[int, ...]:
    """Drop candies into removed cells and refill deterministically."""
    columns = []
    for col in range(SIZE):
        kept = [
            board[row * SIZE + col]
            for row in range(SIZE)
            if row * SIZE + col not in removed
        ]
        missing = SIZE - len(kept)
        fresh = [
            mix_values("refill", fill_seed, col, slot) % COLORS for slot in range(missing)
        ]
        columns.append(fresh + kept)
    out = [0] * (SIZE * SIZE)
    for col in range(SIZE):
        for row in range(SIZE):
            out[row * SIZE + col] = columns[col][row]
    return tuple(out)


class CandyCrush(Game):
    """Match-three with cascades, shimmer idle, and level asset pulls."""

    name = "candy_crush"
    handled_event_types = (EventType.SWIPE, EventType.FRAME_TICK)
    upkeep_cycles = {EventType.FRAME_TICK: 4_000_000, EventType.SWIPE: 400_000}
    upkeep_ip_units = {EventType.FRAME_TICK: {"gpu": 3.0}}

    def build_state(self) -> None:
        self.state.declare("board", deal_board(self.seed), 2 * SIZE * SIZE)
        self.state.declare("score", 0, 4)
        self.state.declare("moves_left", MOVES_PER_LEVEL, 2)
        self.state.declare("level", 1, 1)
        self.state.declare("cascade", 0, 1)
        self.state.declare("level_theme", self.seed & 0xFF, 2048)

    def on_event(self, ctx: HandlerContext) -> None:
        if ctx.trace.event_type is EventType.SWIPE:
            self._on_swipe(ctx)
        else:
            self._on_tick(ctx)

    def _on_swipe(self, ctx: HandlerContext) -> None:
        x0 = ctx.ev("x0")
        y0 = ctx.ev("y0")
        direction = ctx.ev("direction")
        velocity = ctx.ev("velocity")
        # The gesture recognizer always runs over the full motion series
        # before the game can decide the swipe is too slow to be a move.
        ctx.cpu(2_500_000)
        if velocity < 800.0:
            return  # too slow to register as a move gesture
        col = x0 // CELL_PX
        row = y0 // CELL_PX
        ctx.cpu_func("pick_cell", (col, row, direction), 30_000)
        if col >= SIZE or row >= SIZE:
            return  # swipe started off-board (HUD area)
        if ctx.hist("cascade") > 0:
            return  # board still resolving the previous move
        drow, dcol = _OCTANT_DELTAS[direction]
        nrow, ncol = row + drow, col + dcol
        if not (0 <= nrow < SIZE and 0 <= ncol < SIZE):
            return  # swap partner off the edge
        board = ctx.hist("board")
        a, b = row * SIZE + col, nrow * SIZE + ncol
        swapped = list(board)
        swapped[a], swapped[b] = swapped[b], swapped[a]
        swapped_board = tuple(swapped)
        # The full-board match scan is the expensive, memoizable kernel.
        ctx.cpu_func("match_scan", (board, a, b), 3_000_000, reusable=False)
        matches = find_matches(swapped_board)
        if not matches:
            # Invalid move: the game animates the candies swapping and
            # swapping back (a visible wobble), then leaves the board as
            # it was. Repeating the same invalid swap replays the exact
            # same wobble — no new output.
            ctx.ip("gpu", 1.2, bytes_in=64 * 1024, key=("wobble", a, b))
            ctx.out_temp("wobble", (a, b), 16)
            haptic_buzz(ctx, pattern=3)
            return
        score = ctx.hist("score")
        moves_left = ctx.hist("moves_left")
        level = ctx.hist("level")
        fill_seed = mix_values("fill", self.seed, level, score)
        new_board = collapse(swapped_board, matches, fill_seed)
        ctx.out_hist("board", new_board)
        ctx.out_hist("score", score + 5 * len(matches))
        ctx.out_hist("cascade", CASCADE_TICKS)
        play_sound(ctx, sound_id=7)
        if moves_left - 1 <= 0:
            theme = ctx.extern(f"level_assets_{level + 1}")
            ctx.out_hist("level", level + 1)
            ctx.out_hist("level_theme", theme, nbytes=2048 + (theme % 4) * 1024)
            ctx.out_hist("moves_left", MOVES_PER_LEVEL)
            ctx.out_extern("progress_sync", (level + 1, score), 128)
        else:
            ctx.out_hist("moves_left", moves_left - 1)

    def _on_tick(self, ctx: HandlerContext) -> None:
        slot = ctx.ev("slot")
        cascade = ctx.hist("cascade")
        board = ctx.hist("board")
        ctx.cpu(1_000_000)
        board_digest = mix_values("digest", board) & 0xFFFFFF
        if cascade > 0:
            ctx.out_hist("cascade", cascade - 1)
            content = mix_values("fall", board_digest, cascade) & 0xFFFFFFFF
            render_frame(ctx, content, gpu_units=6.0, compose_cycles=7_000_000)
        else:
            # Idle shimmer: four frames repeating while the board rests.
            content = mix_values("shimmer", board_digest, slot) & 0xFFFFFFFF
            render_frame(ctx, content, gpu_units=5.0, compose_cycles=7_000_000)
