"""Colorphun: the simple touch-based game [10].

Two stacked colour panels; the player taps the brighter one before the
timer runs out. Light on compute, naive about rendering — it redraws the
whole (mostly static) frame on every vsync, which is precisely the
redundant event processing SNIP snips.

Useless user events: touch-up events, taps outside the panels, and taps
landing during the between-round cooldown animation.
"""

from __future__ import annotations

from repro.android.events import EventType
from repro.games.base import Game, HandlerContext, mix_values
from repro.games.common import haptic_buzz, play_sound, render_frame

SCREEN_W = 1440
SCREEN_H = 2560
#: Panels leave a dead margin on both sides; taps there do nothing.
MARGIN_X = 140
#: Cooldown ticks after a scored tap during which taps are ignored.
COOLDOWN_TICKS = 6


class Colorphun(Game):
    """Tap-the-brighter-panel arcade game."""

    name = "colorphun"
    handled_event_types = (EventType.TOUCH, EventType.FRAME_TICK)
    upkeep_cycles = {EventType.FRAME_TICK: 4_000_000, EventType.TOUCH: 100_000}
    upkeep_ip_units = {EventType.FRAME_TICK: {"gpu": 1.5}}

    def build_state(self) -> None:
        self.state.declare("score", 0, 4)
        self.state.declare("lives", 3, 1)
        self.state.declare("round_seed", self.seed & 0xFFFF, 4)
        self.state.declare("top_color", 180, 2)
        self.state.declare("bottom_color", 90, 2)
        self.state.declare("cooldown", 0, 1)

    def on_event(self, ctx: HandlerContext) -> None:
        if ctx.trace.event_type is EventType.TOUCH:
            self._on_touch(ctx)
        else:
            self._on_tick(ctx)

    def _on_touch(self, ctx: HandlerContext) -> None:
        action = ctx.ev("action")
        ctx.cpu(20_000)  # input plumbing and view hit-test glue
        if action != 0:  # only touch-down starts a guess
            return
        x = ctx.ev("x")
        y = ctx.ev("y")
        panel = self._hit_panel(ctx, x, y)
        if panel is None:
            return  # tap in the dead margin: processed, no effect
        if ctx.hist("cooldown") > 0:
            return  # round transition still animating: tap ignored
        top = ctx.hist("top_color")
        bottom = ctx.hist("bottom_color")
        score = ctx.hist("score")
        ctx.cpu_func("judge_guess", (panel, top, bottom), 60_000)
        correct = (top > bottom) == (panel == "top")
        if correct:
            seed = ctx.hist("round_seed")
            new_seed = mix_values(seed, score + 1) & 0xFFFF
            ctx.out_hist("score", score + 1)
            ctx.out_hist("round_seed", new_seed)
            ctx.out_hist("top_color", new_seed % 255)
            ctx.out_hist("bottom_color", (new_seed >> 8) % 255)
            ctx.out_hist("cooldown", COOLDOWN_TICKS)
            play_sound(ctx, sound_id=1)
        else:
            lives = ctx.hist("lives")
            if lives <= 1:
                # Game over: the round resets with a fresh board.
                ctx.out_hist("lives", 3)
                ctx.out_hist("score", 0)
                ctx.out_hist("cooldown", COOLDOWN_TICKS)
                play_sound(ctx, sound_id=9)
            else:
                ctx.out_hist("lives", lives - 1)
            haptic_buzz(ctx, pattern=2)

    def _on_tick(self, ctx: HandlerContext) -> None:
        ctx.ev("delta_ms")
        cooldown = ctx.hist("cooldown")
        top = ctx.hist("top_color")
        bottom = ctx.hist("bottom_color")
        score = ctx.hist("score")
        ctx.cpu(1_000_000)  # per-frame game-loop glue (naive busy loop)
        if cooldown > 0:
            ctx.out_hist("cooldown", cooldown - 1)
            content = mix_values("flash", top, bottom, score, cooldown) & 0xFFFFFFFF
            render_frame(ctx, content, gpu_units=3.5, compose_cycles=4_000_000)
        else:
            # Naive full redraw of a static scene — the redundant case.
            content = mix_values("static", top, bottom, score) & 0xFFFFFFFF
            render_frame(ctx, content, gpu_units=2.5, compose_cycles=4_000_000)

    def _hit_panel(self, ctx: HandlerContext, x: int, y: int) -> "str | None":
        """Which panel a tap landed on, as a memoizable sub-function."""
        ctx.cpu_func("hit_test", (x // 72, y // 128), 25_000)
        if x < MARGIN_X or x > SCREEN_W - MARGIN_X:
            return None
        return "top" if y < SCREEN_H // 2 else "bottom"
