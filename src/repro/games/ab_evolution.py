"""AB Evolution: catapult physics game (Angry Birds Evolution [15]).

The paper's running example and the subject of Figs. 6-9. The player
drags to stretch a catapult and flings a bird at targets; a 3D scene is
re-rendered continuously. Two structural properties drive its extreme
43% useless-event rate (Fig. 4): once the catapult is at maximum
stretch, further drag events change nothing, and all drag/fling input is
ignored while a bird is in flight.

The level layout blob grows with level richness up to ~119 kB, giving
the wide ``In.History`` size spread of Fig. 7a, and level-ups fetch a
~1 MB asset bundle (``In.Extern``).
"""

from __future__ import annotations

from repro.android.events import EventType
from repro.games.base import Game, HandlerContext, mix_values
from repro.games.common import haptic_buzz, physics_step, play_sound, render_frame

MAX_STRETCH = 100
MIN_LAUNCH_STRETCH = 10
FLIGHT_TICKS = 30
TARGETS = 10
ANGLE_BUCKETS = 16
BIRDS_PER_LEVEL = 5
#: Pause button hit box (top-left corner), deliberately small.
MENU_W = 200
MENU_H = 200


def layout_bytes(level: int) -> int:
    """Level layout size: richer levels carry bigger scene graphs."""
    return min(119_000, 2_048 + 6_000 * (level - 1))


class AbEvolution(Game):
    """Catapult game with drag-to-stretch, fling-to-launch mechanics."""

    name = "ab_evolution"
    handled_event_types = (
        EventType.MULTI_TOUCH,
        EventType.SWIPE,
        EventType.TOUCH,
        EventType.FRAME_TICK,
    )
    upkeep_ip_units = {EventType.FRAME_TICK: {"gpu": 11.0}}
    upkeep_cycles = {
        EventType.FRAME_TICK: 8_000_000,
        EventType.MULTI_TOUCH: 600_000,
        EventType.SWIPE: 400_000,
        EventType.TOUCH: 100_000,
    }

    def build_state(self) -> None:
        self.state.declare("stretch", 0, 2)
        self.state.declare("angle", 8, 1)
        self.state.declare("bird_idx", 0, 1)
        self.state.declare("birds_left", BIRDS_PER_LEVEL, 1)
        self.state.declare("targets", (1 << TARGETS) - 1, 2)
        self.state.declare("level", 1, 1)
        self.state.declare("level_layout", self.seed & 0xFFFF, layout_bytes(1))
        self.state.declare("flight", 0, 1)
        self.state.declare("flight_seed", 0, 4)
        self.state.declare("score", 0, 4)
        self.state.declare("wind", self.seed % 16, 1)
        self.state.declare("menu_open", 0, 1)
        # HUD sprite atlas: consulted by every frame composition; its
        # ~600 B descriptor is the floor of the In.History size spread
        # (paper Fig. 7a).
        self.state.declare("hud_atlas", self.seed & 0xFF, 640)

    def on_event(self, ctx: HandlerContext) -> None:
        event_type = ctx.trace.event_type
        if event_type is EventType.MULTI_TOUCH:
            self._on_drag(ctx)
        elif event_type is EventType.SWIPE:
            self._on_fling(ctx)
        elif event_type is EventType.TOUCH:
            self._on_touch(ctx)
        else:
            self._on_tick(ctx)

    # -- gesture handlers -------------------------------------------------

    def _on_drag(self, ctx: HandlerContext) -> None:
        gesture = ctx.ev("gesture")
        magnitude = ctx.ev("magnitude")
        ctx.cpu(60_000)  # multi-touch tracking glue
        if gesture != 0:
            return  # pinch/spread: camera zoom disabled mid-level
        if ctx.hist("flight") > 0:
            return  # bird airborne: catapult input locked
        stretch = ctx.hist("stretch")
        new_stretch = max(0, min(MAX_STRETCH, stretch + int(magnitude)))
        # The game recomputes the catapult pose and redraws on every
        # drag sample — including drags past max stretch, where all of
        # this work reproduces the exact same outputs (Fig. 4's 43%).
        bird = ctx.hist("bird_idx")
        ctx.cpu_func("catapult_pose", (new_stretch, bird), 2_200_000)
        ctx.out_hist("stretch", new_stretch)
        # Only the catapult sprite layer (including the loaded bird's
        # cosmetic skin) is re-drawn per drag sample; the full frame is
        # composed on the next vsync tick.
        ctx.ip("gpu", 1.6, bytes_in=128 * 1024,
               key=("catapult", new_stretch, bird))
        ctx.out_temp("catapult", (new_stretch, bird), 32)
        # Trajectory preview arc: pure cosmetics, but wind-dependent.
        wind = ctx.hist("wind")
        ctx.out_temp("aim_guide", (new_stretch, wind), 24)

    def _on_fling(self, ctx: HandlerContext) -> None:
        direction = ctx.ev("direction")
        velocity = ctx.ev("velocity")
        ctx.cpu(70_000)
        if ctx.hist("flight") > 0:
            return  # already airborne
        stretch = ctx.hist("stretch")
        if stretch < MIN_LAUNCH_STRETCH:
            if stretch == 0:
                return  # limp fling with slack catapult: no effect
            ctx.out_hist("stretch", 0)  # catapult snaps back
            haptic_buzz(ctx, pattern=4)
            return
        # The release gesture sets the launch direction.
        angle = self._aim_bucket(ctx, direction, int(velocity))
        ctx.out_hist("angle", angle)
        wind = ctx.hist("wind")
        bird = ctx.hist("bird_idx")
        birds_left = ctx.hist("birds_left")
        seed = mix_values("flight", stretch, angle, wind, bird, int(velocity) // 200)
        physics_step(ctx, key=(stretch, angle, wind, bird), cpu_cycles=6_000_000,
                     dsp_units=2.0)
        ctx.out_hist("flight", FLIGHT_TICKS)
        ctx.out_hist("flight_seed", seed & 0xFFFFFFFF)
        ctx.out_hist("stretch", 0)
        ctx.out_hist("birds_left", birds_left - 1)
        ctx.out_hist("bird_idx", (bird + 1) % 3)
        play_sound(ctx, sound_id=21)

    def _on_touch(self, ctx: HandlerContext) -> None:
        action = ctx.ev("action")
        x = ctx.ev("x")
        y = ctx.ev("y")
        ctx.cpu(25_000)
        if action != 0:
            return
        if x < MENU_W and y < MENU_H:
            menu = ctx.hist("menu_open")
            ctx.out_hist("menu_open", 1 - menu)
            play_sound(ctx, sound_id=2)
        # Taps anywhere else do nothing mid-level.

    # -- frame loop ---------------------------------------------------------

    def _on_tick(self, ctx: HandlerContext) -> None:
        slot = ctx.ev("slot")
        flight = ctx.hist("flight")
        ctx.cpu(1_000_000)
        if flight > 0:
            self._flight_tick(ctx, flight)
            return
        level = ctx.hist("level")
        stretch = ctx.hist("stretch")
        angle = ctx.hist("angle")
        targets = ctx.hist("targets")
        menu = ctx.hist("menu_open")
        hud = ctx.hist("hud_atlas")
        content = mix_values("idle", level, stretch, angle, targets, menu, hud,
                             slot)
        render_frame(ctx, content & 0xFFFFFFFF, gpu_units=9.0, compose_cycles=10_000_000)

    def _flight_tick(self, ctx: HandlerContext, flight: int) -> None:
        seed = ctx.hist("flight_seed")
        ctx.hist("hud_atlas")  # the HUD overlay rides every frame
        tick_pos = FLIGHT_TICKS - flight
        physics_step(ctx, key=(seed, tick_pos), cpu_cycles=4_000_000, dsp_units=1.5)
        content = mix_values("trajectory", seed, tick_pos) & 0xFFFFFFFF
        render_frame(ctx, content, gpu_units=12.0, compose_cycles=7_000_000)
        remaining = flight - 1
        ctx.out_hist("flight", remaining)
        if remaining > 0:
            return
        self._impact(ctx, seed)

    def _impact(self, ctx: HandlerContext, seed: int) -> None:
        """Bird lands: resolve destruction against the level layout."""
        layout = ctx.hist("level_layout")  # the big In.History read
        targets = ctx.hist("targets")
        score = ctx.hist("score")
        ctx.cpu_func("impact_solve", (seed, layout, targets), 5_000_000,
                     reusable=False)
        destroyed = 0
        remaining_targets = targets
        for strike in range(3):
            candidate = mix_values("hit", seed, layout, strike) % TARGETS
            bit = 1 << candidate
            if remaining_targets & bit:
                remaining_targets &= ~bit
                destroyed += 1
        ctx.out_hist("targets", remaining_targets)
        if destroyed:
            ctx.out_hist("score", score + 100 * destroyed)
            play_sound(ctx, sound_id=22)
            haptic_buzz(ctx, pattern=5)
        if remaining_targets == 0 or ctx.hist("birds_left") == 0:
            self._level_up(ctx)

    def _level_up(self, ctx: HandlerContext) -> None:
        level = ctx.hist("level")
        theme = ctx.extern(f"level_bundle_{level + 1}")
        ctx.out_hist("level", level + 1)
        ctx.out_hist("level_layout", mix_values("layout", theme, level + 1) & 0xFFFF,
                     nbytes=layout_bytes(level + 1))
        ctx.out_hist("targets", (1 << TARGETS) - 1)
        ctx.out_hist("birds_left", BIRDS_PER_LEVEL)
        ctx.out_hist("wind", mix_values("wind", level + 1) % 16)
        ctx.out_extern("level_complete", (level, ctx.hist("score")), 256)

    def _aim_bucket(self, ctx: HandlerContext, direction: int, velocity: int) -> int:
        """Quantised launch direction from the release gesture."""
        velocity_band = velocity // 800
        ctx.cpu_func("aim_bucket", (direction, velocity_band), 40_000)
        return (direction * 2 + velocity_band) % ANGLE_BUCKETS
