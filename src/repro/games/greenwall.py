"""Greenwall: fling-fruit-at-a-wall arcade slicing [32, 33].

Waves of fruit arc across the screen on fixed launch patterns; the
player slices them with swipes. Trajectories are pure parabolas of
``(pattern, fruit, phase)``, and the game ships only a handful of launch
patterns, so tick rendering recurs across waves — good memoization
ground. Swipes that miss every fruit change nothing (the whiff events).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.android.events import EventType
from repro.games.base import Game, HandlerContext, mix_values
from repro.games.common import haptic_buzz, physics_step, play_sound, render_frame

SCREEN_W = 1440
SCREEN_H = 2560
#: Number of distinct launch patterns the game ships.
PATTERNS = 8
FRUITS_PER_WAVE = 5
WAVE_TICKS = 90
GRAVITY = 0.9
SLICE_RADIUS = 480.0


def fruit_position(pattern: int, fruit: int, phase: int) -> Tuple[float, float]:
    """Deterministic parabolic position of one fruit at a wave phase."""
    launch = mix_values("launch", pattern, fruit)
    x0 = 120 + (launch % 1200)
    vx = ((launch >> 10) % 13) - 6
    vy = 38 + ((launch >> 16) % 18)
    x = x0 + vx * phase
    y = SCREEN_H - (vy * phase - 0.5 * GRAVITY * phase * phase)
    return (x, y)


def _segment_distance(px: float, py: float, x0: float, y0: float, x1: float, y1: float) -> float:
    """Distance from point (px,py) to segment (x0,y0)-(x1,y1)."""
    dx, dy = x1 - x0, y1 - y0
    length_sq = dx * dx + dy * dy
    if length_sq == 0:
        return ((px - x0) ** 2 + (py - y0) ** 2) ** 0.5
    t = max(0.0, min(1.0, ((px - x0) * dx + (py - y0) * dy) / length_sq))
    cx, cy = x0 + t * dx, y0 + t * dy
    return ((px - cx) ** 2 + (py - cy) ** 2) ** 0.5


class Greenwall(Game):
    """Swipe-slicing game with pattern-driven fruit waves."""

    name = "greenwall"
    handled_event_types = (EventType.SWIPE, EventType.FRAME_TICK)
    upkeep_cycles = {EventType.FRAME_TICK: 7_000_000, EventType.SWIPE: 500_000}
    upkeep_ip_units = {EventType.FRAME_TICK: {"gpu": 4.0}}

    def build_state(self) -> None:
        self.state.declare("pattern", self.seed % PATTERNS, 1)
        self.state.declare("phase", 0, 1)
        self.state.declare("alive", (1 << FRUITS_PER_WAVE) - 1, 1)
        self.state.declare("wave_index", 0, 2)
        self.state.declare("score", 0, 4)
        self.state.declare("combo", 0, 1)
        self.state.declare("wall_art", self.seed & 0xFF, 4096)

    def on_event(self, ctx: HandlerContext) -> None:
        if ctx.trace.event_type is EventType.SWIPE:
            self._on_swipe(ctx)
        else:
            self._on_tick(ctx)

    def _on_swipe(self, ctx: HandlerContext) -> None:
        x0 = ctx.ev("x0")
        y0 = ctx.ev("y0")
        x1 = ctx.ev("x1")
        y1 = ctx.ev("y1")
        ctx.cpu(1_000_000)
        pattern = ctx.hist("pattern")
        phase = ctx.hist("phase")
        alive = ctx.hist("alive")
        # Geometric slice test over every airborne fruit.
        ctx.cpu_func(
            "slice_test",
            (x0 // 80, y0 // 80, x1 // 80, y1 // 80, pattern, phase, alive),
            2_500_000,
        )
        hits = self._hits(alive, pattern, phase, x0, y0, x1, y1)
        if not hits:
            return  # whiff: full slice test ran, nothing changed
        new_alive = alive
        for fruit in hits:
            new_alive &= ~(1 << fruit)
        score = ctx.hist("score")
        combo = ctx.hist("combo")
        ctx.out_hist("alive", new_alive)
        ctx.out_hist("score", score + 10 * len(hits) + 5 * combo)
        ctx.out_hist("combo", min(9, combo + len(hits)))
        play_sound(ctx, sound_id=11)
        haptic_buzz(ctx, pattern=1)
        splash = mix_values("splash", pattern, phase, tuple(hits)) & 0xFFFFFFFF
        render_frame(ctx, splash, gpu_units=3.0)

    def _on_tick(self, ctx: HandlerContext) -> None:
        ctx.ev("delta_ms")
        pattern = ctx.hist("pattern")
        phase = ctx.hist("phase")
        alive = ctx.hist("alive")
        ctx.cpu(1_000_000)
        physics_step(ctx, key=(pattern, phase, alive), cpu_cycles=3_000_000)
        if phase >= WAVE_TICKS or alive == 0:
            wave_index = ctx.hist("wave_index")
            combo = ctx.hist("combo")
            next_pattern = mix_values("wave", wave_index + 1) % PATTERNS
            ctx.out_hist("pattern", next_pattern)
            ctx.out_hist("phase", 0)
            ctx.out_hist("alive", (1 << FRUITS_PER_WAVE) - 1)
            ctx.out_hist("wave_index", wave_index + 1)
            if combo:
                ctx.out_hist("combo", 0)
            content = mix_values("wave_intro", next_pattern) & 0xFFFFFFFF
            render_frame(ctx, content, gpu_units=5.0, compose_cycles=5_000_000)
            return
        ctx.out_hist("phase", phase + 1)
        content = mix_values("flight", pattern, phase, alive) & 0xFFFFFFFF
        render_frame(ctx, content, gpu_units=6.0, compose_cycles=5_000_000)

    def _hits(
        self,
        alive: int,
        pattern: int,
        phase: int,
        x0: int,
        y0: int,
        x1: int,
        y1: int,
    ) -> List[int]:
        """Indices of fruit whose current position the swipe crosses."""
        hits = []
        for fruit in range(FRUITS_PER_WAVE):
            if not alive & (1 << fruit):
                continue
            fx, fy = fruit_position(pattern, fruit, phase)
            if 0 <= fy <= SCREEN_H and _segment_distance(fx, fy, x0, y0, x1, y1) <= SLICE_RADIUS:
                hits.append(fruit)
        return hits
