"""Game workloads: framework plus the seven evaluated games.

Games are deterministic event-driven programs written against
:class:`~repro.games.base.HandlerContext`; see :mod:`repro.games.base`
for the execution/tracing contract and :mod:`repro.games.registry` for
the catalogue.
"""

from repro.games.base import (
    CpuFuncCall,
    ExternSource,
    FieldRead,
    FieldWrite,
    Game,
    HandlerContext,
    InputCategory,
    IpCall,
    OutputCategory,
    ProcessingTrace,
    mix_values,
)
from repro.games.registry import GAME_NAMES, GAMES, GameInfo, create_game, game_info
from repro.games.state import StateField, StateStore

__all__ = [
    "CpuFuncCall",
    "ExternSource",
    "FieldRead",
    "FieldWrite",
    "GAME_NAMES",
    "GAMES",
    "Game",
    "GameInfo",
    "HandlerContext",
    "InputCategory",
    "IpCall",
    "OutputCategory",
    "ProcessingTrace",
    "StateField",
    "StateStore",
    "create_game",
    "game_info",
    "mix_values",
]
