"""Memory Game: card-pair matching [30].

A 6x6 grid of face-down cards; the player flips two per move and keeps
matches. Nearly every valid tap changes the board, so this game has the
*lowest* useless-event fraction of the seven. Each card is its own
state cell (sprite handle, face state, animation cursor), and both the
tap logic and the board view depend on the whole set — so SNIP's
necessary inputs span all 36 card cells and its per-event comparison is
by far the widest of the seven games. That is exactly the paper's
Fig. 11c finding: Memory Game pays the highest lookup overhead "due to
the high amount of comparisons for each event processing".

When every pair is matched the game deals the next level's layout
(fixed content per level, like the shipped app).
"""

from __future__ import annotations

from typing import Tuple

from repro.android.events import EventType
from repro.games.base import Game, HandlerContext, mix_values
from repro.games.common import haptic_buzz, play_sound, render_frame

GRID = 6
CELLS = GRID * GRID
#: Sentinel for "no first card picked yet".
NO_PICK = 255
#: Screen cell size used by the tap hit-test.
CELL_W = 1440 // GRID
CELL_H = 2200 // GRID
#: Bytes per card cell: sprite handle, face state, animation cursor.
CARD_BYTES = 64
#: Ticks a mismatched pair stays face-up before flipping back.
HIDE_TICKS = 30

# Card face states packed into the card value alongside the kind.
FACE_DOWN = 0
FACE_UP = 1
FACE_MATCHED = 2


def deal_kinds(level: int) -> Tuple[int, ...]:
    """Deterministic pair layout for one level (fixed app content)."""
    kinds = list(range(CELLS // 2)) * 2
    for index in range(CELLS - 1, 0, -1):
        swap = mix_values("deal", level, index) % (index + 1)
        kinds[index], kinds[swap] = kinds[swap], kinds[index]
    return tuple(kinds)


def card_value(kind: int, face: int) -> int:
    """Pack a card's kind and face state into one cell value."""
    return (kind << 2) | face


def card_kind(value: int) -> int:
    """Unpack the kind from a card cell value."""
    return value >> 2


def card_face(value: int) -> int:
    """Unpack the face state from a card cell value."""
    return value & 0b11


class MemoryGame(Game):
    """Flip-two card matching on a 6x6 grid of per-card state cells."""

    name = "memory_game"
    handled_event_types = (EventType.TOUCH, EventType.FRAME_TICK)
    upkeep_cycles = {EventType.FRAME_TICK: 4_000_000, EventType.TOUCH: 120_000}
    upkeep_ip_units = {EventType.FRAME_TICK: {"gpu": 1.0}}

    def build_state(self) -> None:
        for cell, kind in enumerate(deal_kinds(level=1)):
            self.state.declare(f"card_{cell}", card_value(kind, FACE_DOWN), CARD_BYTES)
        self.state.declare("first_pick", NO_PICK, 1)
        self.state.declare("moves", 0, 2)
        self.state.declare("score", 0, 4)
        self.state.declare("hide_timer", 0, 1)
        self.state.declare("hide_a", NO_PICK, 1)
        self.state.declare("hide_b", NO_PICK, 1)
        self.state.declare("level", 1, 1)

    def on_event(self, ctx: HandlerContext) -> None:
        if ctx.trace.event_type is EventType.TOUCH:
            self._on_touch(ctx)
        else:
            self._on_tick(ctx)

    # -- tap handling -----------------------------------------------------

    def _on_touch(self, ctx: HandlerContext) -> None:
        action = ctx.ev("action")
        ctx.cpu(18_000)
        if action != 0:
            return
        x = ctx.ev("x")
        y = ctx.ev("y")
        cell = self._cell_at(ctx, x, y)
        if cell is None:
            return  # tap below the grid (score bar area)
        if ctx.hist("hide_timer") > 0:
            return  # mismatch pair still shown; input locked
        card = ctx.hist(f"card_{cell}")
        if card_face(card) != FACE_DOWN:
            return  # tapping a face-up or matched card does nothing
        first = ctx.hist("first_pick")
        ctx.cpu_func("flip_logic", (cell, first, card), 90_000)
        if first == NO_PICK:
            ctx.out_hist("first_pick", cell)
            ctx.out_hist(f"card_{cell}", card_value(card_kind(card), FACE_UP))
            play_sound(ctx, sound_id=3)
            return
        first_card = ctx.hist(f"card_{first}")
        moves = ctx.hist("moves")
        ctx.out_hist("moves", moves + 1)
        ctx.out_hist("first_pick", NO_PICK)
        if card_kind(first_card) == card_kind(card):
            ctx.out_hist(f"card_{cell}", card_value(card_kind(card), FACE_MATCHED))
            ctx.out_hist(f"card_{first}", card_value(card_kind(first_card), FACE_MATCHED))
            score = ctx.hist("score")
            ctx.out_hist("score", score + 10)
            play_sound(ctx, sound_id=4)
            self._maybe_next_level(ctx, cell, first)
        else:
            ctx.out_hist(f"card_{cell}", card_value(card_kind(card), FACE_UP))
            ctx.out_hist("hide_timer", HIDE_TICKS)
            ctx.out_hist("hide_a", first)
            ctx.out_hist("hide_b", cell)
            haptic_buzz(ctx, pattern=1)

    def _maybe_next_level(self, ctx: HandlerContext, cell: int, first: int) -> None:
        """Deal the next level once every pair is matched."""
        for index in range(CELLS):
            if index in (cell, first):
                continue
            if card_face(ctx.hist(f"card_{index}")) != FACE_MATCHED:
                return
        level = ctx.hist("level")
        ctx.out_hist("level", level + 1)
        for index, kind in enumerate(deal_kinds(level + 1)):
            ctx.out_hist(f"card_{index}", card_value(kind, FACE_DOWN))
        play_sound(ctx, sound_id=5)

    # -- frame loop ----------------------------------------------------------

    def _on_tick(self, ctx: HandlerContext) -> None:
        ctx.ev("delta_ms")
        hide_timer = ctx.hist("hide_timer")
        ctx.cpu(1_500_000)
        if hide_timer > 0:
            remaining = hide_timer - 1
            ctx.out_hist("hide_timer", remaining)
            if remaining == 0:
                # Flip the mismatched pair face-down again.
                for key in ("hide_a", "hide_b"):
                    index = ctx.hist(key)
                    if index != NO_PICK:
                        value = ctx.hist(f"card_{index}")
                        ctx.out_hist(
                            f"card_{index}",
                            card_value(card_kind(value), FACE_DOWN),
                        )
                        ctx.out_hist(key, NO_PICK)
        # The board view digests every card cell: all 36 are inputs.
        cards = [ctx.hist(f"card_{index}") for index in range(CELLS)]
        content = mix_values("board_view", tuple(cards), hide_timer > 0) & 0xFFFFFFFF
        render_frame(ctx, content, gpu_units=4.5, compose_cycles=5_000_000,
                     frame_bytes=512 * 1024)

    def _cell_at(self, ctx: HandlerContext, x: int, y: int) -> "int | None":
        """Grid cell under a tap, as a memoizable sub-function."""
        ctx.cpu_func("cell_at", (x // CELL_W, y // CELL_H), 22_000)
        col = x // CELL_W
        row = y // CELL_H
        if col >= GRID or row >= GRID:
            return None
        return row * GRID + col
