"""Addressable game-state store.

Game state is the home of the paper's ``In.History`` / ``Out.History``
categories: values produced by earlier event processing and consumed by
later events. Fields are named, typed, and carry an explicit byte size
that may change on write — the camera surface map of an AR game grows
with scene clutter (paper Fig. 7c), which is exactly why History inputs
cannot be indexed from static locations.

Reads and writes can be observed through a registered observer; the
handler context uses this to build the per-event I/O trace without the
game logic having to do any bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, Optional, Tuple

from repro.errors import StateError


@dataclass
class StateField:
    """One named state cell: current value and its byte size."""

    name: str
    value: Any
    nbytes: int

    def snapshot(self) -> Tuple[Any, int]:
        """Immutable (value, nbytes) pair."""
        return (self.value, self.nbytes)


#: Observer signature: (kind, name, value, nbytes) with kind in
#: {"read", "write"}.
StateObserver = Callable[[str, str, Any, int], None]


class StateStore:
    """Named, observed, byte-accounted game-state cells."""

    def __init__(self) -> None:
        self._fields: Dict[str, StateField] = {}
        self._observer: Optional[StateObserver] = None

    # -- declaration ---------------------------------------------------

    def declare(self, name: str, value: Any, nbytes: int) -> None:
        """Create a field with its initial value (not observed)."""
        if name in self._fields:
            raise StateError(f"state field {name!r} already declared")
        if nbytes <= 0:
            raise StateError(f"state field {name!r} needs a positive size, got {nbytes}")
        self._fields[name] = StateField(name=name, value=value, nbytes=nbytes)

    def has(self, name: str) -> bool:
        """Whether a field exists."""
        return name in self._fields

    @classmethod
    def from_cells(cls, cells: "Tuple[Tuple[str, Any, int], ...]") -> "StateStore":
        """Rebuild a store from ``(name, value, nbytes)`` triples.

        The game-template clone path uses this to restore a cached
        initial state without re-running ``build_state`` (which may
        regenerate expensive content like dealt boards). Cells must come
        from a store built through :meth:`declare`, so the invariants
        (unique names, positive sizes) already hold.
        """
        store = cls()
        fields = store._fields
        for name, value, nbytes in cells:
            fields[name] = StateField(name=name, value=value, nbytes=nbytes)
        return store

    # -- observation ---------------------------------------------------

    def set_observer(self, observer: Optional[StateObserver]) -> None:
        """Install (or clear) the read/write observer."""
        self._observer = observer

    # -- access --------------------------------------------------------

    def read(self, name: str) -> Any:
        """Read a field's value, notifying the observer."""
        field = self._require(name)
        if self._observer is not None:
            self._observer("read", name, field.value, field.nbytes)
        return field.value

    def peek(self, name: str) -> Any:
        """Read a field's value without notifying the observer.

        Used by the emulator's memory-dump snapshots and by the
        useless-event detector; never by game logic.
        """
        return self._require(name).value

    def get(self, name: str, default: Any = None) -> Any:
        """Unobserved read returning ``default`` for unknown fields.

        The batched contribution fold uses this where the scalar path
        goes through a full :meth:`snapshot` dict and ``.get`` — one
        probe instead of materialising every field.
        """
        field = self._fields.get(name)
        return default if field is None else field.value

    def size_of(self, name: str) -> int:
        """Current byte size of a field."""
        return self._require(name).nbytes

    def write(self, name: str, value: Any, nbytes: Optional[int] = None) -> None:
        """Write a field, optionally resizing it, notifying the observer."""
        field = self._require(name)
        if nbytes is not None:
            if nbytes <= 0:
                raise StateError(f"state field {name!r} resize must be positive, got {nbytes}")
            field.nbytes = nbytes
        field.value = value
        if self._observer is not None:
            self._observer("write", name, field.value, field.nbytes)

    # -- bulk ----------------------------------------------------------

    def field_names(self) -> Tuple[str, ...]:
        """All declared field names, in declaration order."""
        return tuple(self._fields)

    def snapshot(self) -> Dict[str, Tuple[Any, int]]:
        """Full memory dump: {name: (value, nbytes)} (not observed).

        This is the emulator's stand-in for the Android heap-profiler
        dump the paper takes per event.
        """
        return {name: field.snapshot() for name, field in self._fields.items()}

    def total_bytes(self) -> int:
        """Current total state size."""
        return sum(field.nbytes for field in self._fields.values())

    def __iter__(self) -> Iterator[StateField]:
        return iter(self._fields.values())

    def __len__(self) -> int:
        return len(self._fields)

    def _require(self, name: str) -> StateField:
        try:
            return self._fields[name]
        except KeyError:
            raise StateError(f"unknown state field {name!r}") from None
