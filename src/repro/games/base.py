"""Game framework: traced, deterministic event handlers.

Every game is a set of event handlers written against
:class:`HandlerContext`. The context is the *only* way a handler may
read inputs (event fields, history state, external assets) or produce
effects (temporary outputs, history writes, external sends, CPU/IP/memory
work), which gives us a complete per-event I/O record — the
:class:`ProcessingTrace` — for free. That record is simultaneously:

* the energy bill of the event (cycles, IP invocations, bytes moved);
* the memoization input/output record (Sec. III);
* the ML training row (Sec. V);
* the useless-event detector (Fig. 4).

Handlers must be pure functions of the inputs they read through the
context; the emulator's replay determinism (and therefore the entire
cloud-profiling methodology) rests on that contract.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.android.events import Event, EventType
from repro.errors import GameError
from repro.games.state import StateStore


class InputCategory(enum.Enum):
    """Paper Sec. IV-A input taxonomy."""

    EVENT = "in_event"
    HISTORY = "in_history"
    EXTERN = "in_extern"

    def __str__(self) -> str:
        return self.value


class OutputCategory(enum.Enum):
    """Paper Sec. IV-B output taxonomy."""

    TEMP = "out_temp"
    HISTORY = "out_history"
    EXTERN = "out_extern"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, slots=True)
class FieldRead:
    """One input consumed by a handler."""

    name: str
    category: InputCategory
    value: Any
    nbytes: int


@dataclass(frozen=True, slots=True)
class FieldWrite:
    """One output produced by a handler.

    ``changed`` records whether the write differed from the value the
    destination already held — the per-field ingredient of the paper's
    useless-event metric.
    """

    name: str
    category: OutputCategory
    value: Any
    nbytes: int
    changed: bool


@dataclass(frozen=True, slots=True)
class IpCall:
    """One accelerator invocation requested by a handler.

    ``key`` identifies the invocation's inputs; when a later invocation
    of the same IP carries the same key, its output would be identical,
    which is what the Max-IP baseline exploits. ``None`` marks calls
    whose inputs are not memoizable (e.g. live camera frames).
    """

    ip_name: str
    work_units: float
    bytes_in: int
    bytes_out: int
    key: Optional[Tuple[Any, ...]] = None


@dataclass(frozen=True, slots=True)
class CpuFuncCall:
    """One pure CPU sub-function executed by a handler.

    The Max-CPU baseline (Sodani/Sohi-style instruction/function reuse
    [3, 14, 42]) memoizes at this granularity: a call whose
    ``(name, key)`` repeats can be skipped. Cycles recorded here are in
    addition to the handler's unstructured glue cycles.
    """

    name: str
    key: Tuple[Any, ...]
    cycles: int
    big: bool = True
    #: Register-pure kernels (inputs are a handful of scalars) can be
    #: reused by hardware/function-level schemes; kernels that walk
    #: memory structures (scene graphs, boards, layouts) cannot — their
    #: inputs are exactly what needs SNIP's lookup table to identify.
    reusable: bool = True


@dataclass(slots=True)
class ProcessingTrace:
    """Everything one event's processing consumed and produced."""

    event_sequence: int
    event_type: EventType
    reads: List[FieldRead] = field(default_factory=list)
    writes: List[FieldWrite] = field(default_factory=list)
    ip_calls: List[IpCall] = field(default_factory=list)
    cpu_funcs: List[CpuFuncCall] = field(default_factory=list)
    cpu_big_cycles: int = 0
    cpu_little_cycles: int = 0
    memory_bytes: int = 0

    # -- input/output views --------------------------------------------

    def reads_in(self, category: InputCategory) -> List[FieldRead]:
        """Reads restricted to one input category."""
        return [read for read in self.reads if read.category is category]

    def writes_in(self, category: OutputCategory) -> List[FieldWrite]:
        """Writes restricted to one output category."""
        return [write for write in self.writes if write.category is category]

    def input_bytes(self, category: Optional[InputCategory] = None) -> int:
        """Bytes of input consumed (optionally one category)."""
        reads = self.reads if category is None else self.reads_in(category)
        return sum(read.nbytes for read in reads)

    def output_bytes(self, category: Optional[OutputCategory] = None) -> int:
        """Bytes of output produced (optionally one category)."""
        writes = self.writes if category is None else self.writes_in(category)
        return sum(write.nbytes for write in writes)

    # -- semantics ------------------------------------------------------

    @property
    def useless(self) -> bool:
        """True when processing changed nothing observable (Fig. 4).

        An event is useless when every write re-stored the value its
        destination already held (or it wrote nothing at all).
        """
        return not any(write.changed for write in self.writes)

    def output_signature(self) -> Tuple[Tuple[str, str, Any], ...]:
        """Hashable description of all outputs, for equivalence classes."""
        return tuple(
            sorted((write.name, write.category.value, write.value) for write in self.writes)
        )

    def output_class(self) -> int:
        """Stable 64-bit label of the output signature (ML target)."""
        digest = hashlib.blake2b(
            repr(self.output_signature()).encode("utf-8"), digest_size=8
        ).digest()
        return int.from_bytes(digest, "little")

    @property
    def func_cycles(self) -> int:
        """Cycles spent inside named (memoizable) CPU sub-functions."""
        return sum(call.cycles for call in self.cpu_funcs)

    @property
    def total_cycles(self) -> int:
        """Dynamic cycles on any core — the Fig. 6 coverage weight."""
        return self.cpu_big_cycles + self.cpu_little_cycles + self.func_cycles


class ExternSource:
    """Deterministic external-data provider (cloud, CDN, network).

    Fetches are pure functions of ``(seed, key)`` so replay sees the
    same bytes the device saw. Asset payloads are large (the ~1 MB
    In.Extern spikes of Fig. 7a) but rare.
    """

    def __init__(self, seed: int, payload_bytes: int = 1_048_576) -> None:
        self._seed = seed
        self.payload_bytes = payload_bytes
        self._fetch_count = 0

    @property
    def fetch_count(self) -> int:
        """How many fetches have been served."""
        return self._fetch_count

    def fetch(self, key: str) -> Tuple[int, int]:
        """Return ``(content_id, nbytes)`` for an asset key."""
        self._fetch_count += 1
        return self.peek(key)

    def peek(self, key: str) -> Tuple[int, int]:
        """Like :meth:`fetch` but without counting as a network fetch.

        The SNIP runtime uses this for necessary-input comparisons: a
        previously fetched asset is already cached in RAM, so comparing
        against it costs memory traffic, not a network round trip.
        """
        digest = hashlib.blake2b(
            f"{self._seed}:{key}".encode("utf-8"), digest_size=8
        ).digest()
        return (int.from_bytes(digest, "little") & 0xFFFF, self.payload_bytes)


class HandlerContext:
    """The only door between a game handler and the outside world."""

    __slots__ = ("_event", "_state", "_screen", "_extern", "trace")

    def __init__(
        self,
        event: Event,
        state: StateStore,
        screen: Dict[str, Any],
        extern: ExternSource,
    ) -> None:
        self._event = event
        self._state = state
        self._screen = screen
        self._extern = extern
        self.trace = ProcessingTrace(
            event_sequence=event.sequence, event_type=event.event_type
        )

    # -- inputs ----------------------------------------------------------

    def ev(self, name: str) -> Any:
        """Read one In.Event field."""
        value = self._event.field(name)
        spec = self._event.schema.spec(name)
        self.trace.reads.append(
            FieldRead(name=f"event:{name}", category=InputCategory.EVENT,
                      value=value, nbytes=spec.nbytes)
        )
        return value

    def hist(self, name: str) -> Any:
        """Read one In.History field from game state."""
        value = self._state.read(name)
        self.trace.reads.append(
            FieldRead(name=f"hist:{name}", category=InputCategory.HISTORY,
                      value=value, nbytes=self._state.size_of(name))
        )
        return value

    def extern(self, key: str) -> int:
        """Fetch an external asset; returns its content id."""
        content_id, nbytes = self._extern.fetch(key)
        self.trace.reads.append(
            FieldRead(name=f"extern:{key}", category=InputCategory.EXTERN,
                      value=content_id, nbytes=nbytes)
        )
        # Fetched assets transit memory on their way into the heap.
        self.mem(nbytes)
        return content_id

    # -- work ------------------------------------------------------------

    def cpu(self, cycles: int, big: bool = True) -> None:
        """Account ``cycles`` of CPU work for this event."""
        if cycles < 0:
            raise GameError(f"negative cycle count {cycles}")
        if big:
            self.trace.cpu_big_cycles += cycles
        else:
            self.trace.cpu_little_cycles += cycles

    def cpu_func(
        self,
        name: str,
        key: Tuple[Any, ...],
        cycles: int,
        big: bool = True,
        reusable: bool = True,
    ) -> None:
        """Account a pure, memoizable CPU sub-function call.

        ``key`` must capture every input the sub-function depends on;
        the Max-CPU baseline will skip repeats of ``(name, key)`` when
        ``reusable`` (register-pure inputs). Pass ``reusable=False`` for
        kernels whose inputs live in memory structures.
        """
        if cycles < 0:
            raise GameError(f"negative cycle count {cycles} in {name!r}")
        self.trace.cpu_funcs.append(
            CpuFuncCall(name=name, key=key, cycles=cycles, big=big, reusable=reusable)
        )

    def ip(
        self,
        ip_name: str,
        work_units: float,
        bytes_in: int = 0,
        bytes_out: int = 0,
        key: Optional[Tuple[Any, ...]] = None,
    ) -> None:
        """Account one accelerator invocation for this event.

        Pass ``key`` when the invocation's output is a pure function of
        identifiable inputs (enables Max-IP skipping of exact repeats).
        """
        if work_units < 0 or bytes_in < 0 or bytes_out < 0:
            raise GameError(f"negative IP invocation parameters for {ip_name!r}")
        self.trace.ip_calls.append(
            IpCall(ip_name=ip_name, work_units=work_units,
                   bytes_in=bytes_in, bytes_out=bytes_out, key=key)
        )

    def mem(self, num_bytes: int) -> None:
        """Account ``num_bytes`` of memory traffic for this event."""
        if num_bytes < 0:
            raise GameError(f"negative memory traffic {num_bytes}")
        self.trace.memory_bytes += num_bytes

    # -- outputs ---------------------------------------------------------

    def out_temp(self, name: str, value: Any, nbytes: int) -> None:
        """Emit a temporary output (frame tile, haptic, sound cue).

        Compared against the last value shown for ``name`` to decide
        whether anything observable changed.
        """
        changed = self._screen.get(name) != value
        self._screen[name] = value
        self.trace.writes.append(
            FieldWrite(name=f"temp:{name}", category=OutputCategory.TEMP,
                       value=value, nbytes=nbytes, changed=changed)
        )

    def out_hist(self, name: str, value: Any, nbytes: Optional[int] = None) -> None:
        """Write a history output (game state consumed by later events)."""
        previous = self._state.peek(name)
        self._state.write(name, value, nbytes=nbytes)
        self.trace.writes.append(
            FieldWrite(name=f"hist:{name}", category=OutputCategory.HISTORY,
                       value=value, nbytes=self._state.size_of(name),
                       changed=previous != value)
        )

    def out_extern(self, name: str, value: Any, nbytes: int) -> None:
        """Send an output to the network/cloud (always a visible change)."""
        self.trace.writes.append(
            FieldWrite(name=f"extern:{name}", category=OutputCategory.EXTERN,
                       value=value, nbytes=nbytes, changed=True)
        )
        self.mem(nbytes)


class Game:
    """Base class for the seven game workloads.

    Subclasses declare their initial state in :meth:`build_state` and
    implement :meth:`on_event`. The framework guarantees subclasses a
    fresh :class:`HandlerContext` per event and applies no other magic.
    """

    #: Subclasses set these class attributes.
    name: str = "abstract"
    handled_event_types: Sequence[EventType] = ()
    #: Unavoidable engine work per event type: input plumbing, engine
    #: bookkeeping, GC pressure — work the platform performs *before*
    #: the app handler runs, so no short-circuiting scheme can skip it.
    #: Big-core cycles, charged by every event loop for every event.
    upkeep_cycles: Mapping[EventType, int] = {}
    #: Unavoidable IP work per event type, ``{event_type: {ip: units}}``:
    #: the system compositor (SurfaceFlinger) re-composites every frame
    #: whether or not the app redrew anything, and the camera ISP
    #: processes every frame before the handler ever sees it — energy
    #: outside any scheme's reach.
    upkeep_ip_units: Mapping[EventType, Mapping[str, float]] = {}

    @classmethod
    def upkeep_cycles_for(cls, event_type: EventType) -> int:
        """Unavoidable pre-handler cycles for one event type."""
        return cls.upkeep_cycles.get(event_type, 0)

    @classmethod
    def upkeep_ip_units_for(cls, event_type: EventType) -> Mapping[str, float]:
        """Unavoidable IP work for one event type, per IP block."""
        return cls.upkeep_ip_units.get(event_type, {})

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.state = StateStore()
        self.screen: Dict[str, Any] = {}
        self.extern_source = ExternSource(seed=seed)
        self.events_processed = 0
        self.build_state()

    # -- subclass API -----------------------------------------------------

    def build_state(self) -> None:
        """Declare every state field with its initial value."""
        raise NotImplementedError

    def on_event(self, ctx: HandlerContext) -> None:
        """Handle one event through the context (pure in ctx inputs)."""
        raise NotImplementedError

    def advance_engine(self, event: Event) -> None:
        """Engine-side bookkeeping that runs before the app handler.

        Real engines maintain scroll counters, timers, and cached
        digests outside the event handler (their cost sits in the
        per-event upkeep). State written here is ordinary game state —
        deterministic, replayed identically by the emulator — but it is
        not part of the handler's traced output, exactly like a system
        service's counters.
        """

    # -- framework ----------------------------------------------------------

    def process(self, event: Event) -> ProcessingTrace:
        """Run the handler for ``event`` and return its full trace."""
        if event.event_type not in self.handled_event_types:
            raise GameError(
                f"{self.name}: does not handle {event.event_type} events"
            )
        ctx = HandlerContext(event, self.state, self.screen, self.extern_source)
        self.on_event(ctx)
        self.events_processed += 1
        return ctx.trace

    def apply_outputs(self, writes: Sequence[FieldWrite]) -> None:
        """Apply stored outputs without running the handler.

        This is the short-circuit path: a memoization hit replays the
        recorded writes directly into state/screen.
        """
        for write in writes:
            kind, _, name = write.name.partition(":")
            if kind == "hist":
                self.state.write(name, write.value, nbytes=write.nbytes)
            elif kind == "temp":
                self.screen[name] = write.value
            elif kind != "extern":
                raise GameError(f"cannot apply stored write {write.name!r}")

    def fresh(self) -> "Game":
        """A brand-new instance with identical initial conditions."""
        return type(self)(seed=self.seed)


#: Memoised :func:`mix_values` digests, keyed by the exact repr text
#: that is hashed — the same mixes recur heavily across devices (shared
#: state prefixes before each user's first gesture diverges them).
_MIX_CACHE: Dict[str, int] = {}
_MIX_CACHE_CAP = 262_144


def mix_values(*values: Any) -> int:
    """Deterministic pseudo-random mix of handler inputs.

    Games use this instead of an RNG wherever play needs variety (new
    candy colours, spawn positions): the result depends only on values
    the handler read through the context, preserving replayability.
    """
    text = repr(values)
    mixed = _MIX_CACHE.get(text)
    if mixed is None:
        digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
        mixed = int.from_bytes(digest, "little")
        if len(_MIX_CACHE) < _MIX_CACHE_CAP:
            _MIX_CACHE[text] = mixed
    return mixed
