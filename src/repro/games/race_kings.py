"""Race Kings: 3D drag-racing with heavy physics [12, 34].

The most hardware-hungry workload: a 60 fps 3D render loop with a
per-tick physics solve. Because the car's track position advances every
frame, tick processing only repeats once the car re-enters a track
segment in the same dynamic state (same speed band, lane, steering) —
which happens lap after lap, but far less often than an idle board
repeats. That makes Race Kings the *least* short-circuitable game (40%
in Fig. 11b) while its memoizable physics kernels give Max CPU its best
showing (13% in Fig. 11a).
"""

from __future__ import annotations

from repro.android.events import EventType
from repro.games.base import Game, HandlerContext, mix_values
from repro.games.common import haptic_buzz, play_sound, render_frame
from repro.soc.soc import IP_DSP

#: The circuit is divided into 1200 render slots; the car advances one
#: slot per vsync, so a lap takes 20 s and every session sweeps the
#: same slot lattice — which is what lets tick contexts recur across
#: laps and across sessions at all.
TRACK_SLOTS = 1_200
SLOTS_PER_SEGMENT = 25
STEER_BUCKETS = 9
LANES = 3
SPEED_BUCKETS = 8
NITRO_TICKS = 60
#: Nitro button hit box (bottom-right corner).
NITRO_X = 1140
NITRO_Y = 2260


def segment_of(track_pos: int) -> int:
    """Render segment (scenery block) for a track slot."""
    return track_pos // SLOTS_PER_SEGMENT


class RaceKings(Game):
    """Tilt-and-touch arcade racer on a looping circuit."""

    name = "race_kings"
    handled_event_types = (
        EventType.MULTI_TOUCH,
        EventType.GYRO,
        EventType.TOUCH,
        EventType.FRAME_TICK,
    )
    upkeep_ip_units = {EventType.FRAME_TICK: {"gpu": 34.0}}
    upkeep_cycles = {
        EventType.FRAME_TICK: 17_000_000,
        EventType.MULTI_TOUCH: 500_000,
        EventType.GYRO: 500_000,
        EventType.TOUCH: 100_000,
    }

    def build_state(self) -> None:
        self.state.declare("track_pos", 0, 4)
        # Engine-maintained render caches: the scenery segment and the
        # 4-phase tile-scroll cursor the renderer actually consumes.
        self.state.declare("segment", 0, 1)
        self.state.declare("scroll", 0, 1)
        self.state.declare("speed", 4, 1)
        self.state.declare("lane", 1, 1)
        self.state.declare("steer", 4, 1)
        self.state.declare("nitro_ready", 1, 1)
        self.state.declare("nitro_ticks", 0, 1)
        self.state.declare("nitro_active", 0, 1)
        self.state.declare("lap", 0, 1)
        self.state.declare("damage", 0, 1)
        self.state.declare("tilt", 0, 1)
        self.state.declare("track_theme", self.seed & 0xFF, 8_192)
        self.state.declare("score", 0, 4)

    def advance_engine(self, event) -> None:
        """Race-controller bookkeeping on every vsync.

        Advances the track position, refreshes the renderer's segment
        and scroll caches, runs the nitro timer, and awards the lap
        bonus — system/engine services whose cost is the per-tick
        upkeep, outside the app handler SNIP intercepts.
        """
        if event.event_type is not EventType.FRAME_TICK:
            return
        pos = (self.state.peek("track_pos") + 1) % TRACK_SLOTS
        self.state.write("track_pos", pos)
        self.state.write("segment", segment_of(pos))
        self.state.write("scroll", pos % 4)
        nitro_ticks = self.state.peek("nitro_ticks")
        if nitro_ticks > 0:
            self.state.write("nitro_ticks", nitro_ticks - 1)
            self.state.write("nitro_active", int(nitro_ticks - 1 > 0))
        if pos == 0:  # lap completed
            self.state.write("lap", self.state.peek("lap") + 1)
            self.state.write(
                "score", self.state.peek("score") + 500 + 100 * self.state.peek("speed")
            )
            self.state.write("nitro_ready", 1)

    def on_event(self, ctx: HandlerContext) -> None:
        event_type = ctx.trace.event_type
        if event_type is EventType.MULTI_TOUCH:
            self._on_steer_drag(ctx)
        elif event_type is EventType.GYRO:
            self._on_tilt(ctx)
        elif event_type is EventType.TOUCH:
            self._on_tap(ctx)
        else:
            self._on_tick(ctx)

    # -- gestures -----------------------------------------------------------

    def _on_steer_drag(self, ctx: HandlerContext) -> None:
        x1 = ctx.ev("x1")
        gesture = ctx.ev("gesture")
        ctx.cpu(55_000)
        if gesture != 0:
            return  # pinch gestures do nothing while racing
        new_steer = min(STEER_BUCKETS - 1, x1 // (1440 // STEER_BUCKETS))
        ctx.cpu_func("steer_map", (new_steer,), 120_000)
        # The steering state is re-derived and stored on every drag
        # sample; staying inside the current band changes nothing.
        ctx.out_hist("steer", new_steer)

    def _on_tilt(self, ctx: HandlerContext) -> None:
        gamma = ctx.ev("gamma")
        ctx.cpu(300_000)  # sensor fusion + stability filter
        # The camera-sway tilt bucket is stored every event; the lane
        # only changes when the tilt leaves the deadzone.
        tilt_bucket = int(gamma // 4.0)
        ctx.out_hist("tilt", tilt_bucket)
        target_lane = 1 + (1 if gamma > 8.0 else (-1 if gamma < -8.0 else 0))
        current = ctx.hist("lane")
        ctx.out_hist("lane", target_lane)
        if target_lane != current:
            haptic_buzz(ctx, pattern=2)

    def _on_tap(self, ctx: HandlerContext) -> None:
        action = ctx.ev("action")
        x = ctx.ev("x")
        y = ctx.ev("y")
        ctx.cpu(25_000)
        if action != 0:
            return
        if x < NITRO_X or y < NITRO_Y:
            return  # tap away from the nitro button
        if not ctx.hist("nitro_ready"):
            return  # nitro still recharging: button press ignored
        ctx.out_hist("nitro_ready", 0)
        ctx.out_hist("nitro_ticks", NITRO_TICKS)
        ctx.out_hist("nitro_active", 1)
        play_sound(ctx, sound_id=41)

    # -- frame loop -----------------------------------------------------------

    def _on_tick(self, ctx: HandlerContext) -> None:
        ctx.ev("delta_ms")
        segment = ctx.hist("segment")
        scroll = ctx.hist("scroll")
        speed = ctx.hist("speed")
        lane = ctx.hist("lane")
        nitro_active = ctx.hist("nitro_active")
        damage = ctx.hist("damage")
        ctx.cpu(1_000_000)  # frame-loop glue, audio mix, HUD updates

        # Physics: pure function of the dynamic-state buckets, so it is
        # exactly the kind of kernel function-level reuse can skip. The
        # fine-grained steering angle only shapes the wheel animation;
        # the solver works on the lane-committed state.
        ctx.cpu_func("physics", (speed, lane, nitro_active, damage), 8_000_000)
        ctx.ip(IP_DSP, 3.0, bytes_in=16_384,
               key=("dyn", speed, lane, nitro_active, damage))

        new_speed = self._speed_update(speed, bool(nitro_active), damage)
        ctx.out_hist("speed", new_speed)

        # The road view is built from the engine's render caches: the
        # scenery segment and a 4-phase tile-scroll cursor.
        opponents = mix_values("traffic", segment) % 64
        content = mix_values(
            "road", segment, scroll, lane, new_speed, nitro_active, opponents
        ) & 0xFFFFFFFF
        render_frame(ctx, content, gpu_units=12.0, compose_cycles=4_000_000,
                     frame_bytes=1024 * 1024)

    def _speed_update(self, speed: int, nitro_active: bool, damage: int) -> int:
        """Next speed bucket from the current dynamic state."""
        target = SPEED_BUCKETS - 1 if nitro_active else SPEED_BUCKETS - 2
        target = max(1, target - min(2, damage // 4))
        if speed < target:
            return speed + 1
        if speed > target:
            return speed - 1
        return speed
