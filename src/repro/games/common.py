"""Shared handler building blocks used by all seven games.

These helpers standardise how games express the expensive parts of
event processing — frame rendering (GPU + display), audio cues, haptic
feedback — so energy accounting and memoization keys are consistent
across workloads.
"""

from __future__ import annotations

from typing import Any, Tuple

from repro.games.base import HandlerContext
from repro.soc.soc import IP_AUDIO_CODEC, IP_DISPLAY, IP_DSP, IP_GPU

#: Byte size of one rendered frame tile (Out.Temp granularity, <64 B as
#: in the paper's Fig. 7b).
FRAME_TILE_BYTES = 48
SOUND_CUE_BYTES = 16
HAPTIC_BYTES = 4


def render_frame(
    ctx: HandlerContext,
    content: int,
    gpu_units: float,
    compose_cycles: int = 1_800_000,
    frame_bytes: int = 512 * 1024,
) -> None:
    """Draw one frame whose pixels are a pure function of ``content``.

    ``content`` is a digest of everything visible; two frames with the
    same content are identical on screen, so the GPU and display calls
    are keyed on it (Max-IP can skip exact repeats) and the Out.Temp
    write is unchanged when the content did not move.
    """
    ctx.cpu_func("compose_frame", (content,), compose_cycles, reusable=False)
    ctx.ip(IP_GPU, gpu_units, bytes_in=frame_bytes, bytes_out=frame_bytes,
           key=("frame", content))
    ctx.ip(IP_DISPLAY, 1.0, bytes_in=frame_bytes, key=("scanout", content))
    ctx.mem(frame_bytes)
    ctx.out_temp("frame", content, FRAME_TILE_BYTES)


def play_sound(ctx: HandlerContext, sound_id: int, units: float = 1.0) -> None:
    """Queue a sound cue on the audio codec."""
    ctx.ip(IP_AUDIO_CODEC, units, bytes_in=4096, key=("sound", sound_id))
    ctx.out_temp("audio", sound_id, SOUND_CUE_BYTES)


def haptic_buzz(ctx: HandlerContext, pattern: int) -> None:
    """Fire a vibration pattern (cheap, CPU-driven)."""
    ctx.cpu(8_000, big=False)
    ctx.out_temp("haptic", pattern, HAPTIC_BYTES)


def physics_step(
    ctx: HandlerContext,
    key: Tuple[Any, ...],
    cpu_cycles: int,
    dsp_units: float = 0.0,
) -> None:
    """Run a physics solve as a memoizable CPU function + optional DSP."""
    ctx.cpu_func("physics", key, cpu_cycles)
    if dsp_units > 0:
        ctx.ip(IP_DSP, dsp_units, bytes_in=8192, key=("physics",) + tuple(key))


def bucket(value: float, step: float) -> int:
    """Quantise ``value`` into an integer bucket of width ``step``."""
    return int(value // step)
