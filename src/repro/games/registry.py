"""The seven-game workload catalogue (paper Sec. VI-A).

Games are listed in the paper's complexity order — the x-axis ordering
of Figs. 2 and 3, from occasional-touch Colorphun up to 3D Race Kings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple, Type

from repro.errors import UnknownGameError
from repro.games.ab_evolution import AbEvolution
from repro.games.base import ExternSource, Game
from repro.games.candy_crush import CandyCrush
from repro.games.chase_whisply import ChaseWhisply
from repro.games.colorphun import Colorphun
from repro.games.greenwall import Greenwall
from repro.games.memory_game import MemoryGame
from repro.games.race_kings import RaceKings
from repro.games.state import StateStore


@dataclass(frozen=True)
class GameInfo:
    """Catalogue entry: class plus characterization metadata."""

    name: str
    cls: Type[Game]
    category: str
    display_name: str
    complexity_rank: int  # Fig. 2/3 x-axis position (0 = lightest)


_CATALOGUE: Tuple[GameInfo, ...] = (
    GameInfo("colorphun", Colorphun, "simple touch", "Colorphun", 0),
    GameInfo("memory_game", MemoryGame, "simple touch", "Memory Game", 1),
    GameInfo("candy_crush", CandyCrush, "swipe", "Candy Crush", 2),
    GameInfo("greenwall", Greenwall, "swipe", "Greenwall", 3),
    GameInfo("ab_evolution", AbEvolution, "multi in.event", "AB Evolution", 4),
    GameInfo("chase_whisply", ChaseWhisply, "multi in.event", "Chase Whisply", 5),
    GameInfo("race_kings", RaceKings, "multi in.event", "Race Kings", 6),
)

GAMES: Dict[str, GameInfo] = {info.name: info for info in _CATALOGUE}

#: Game *content* (level layouts, card decks, asset bundles) is fixed by
#: the shipped app, identical for every user and session; only user
#: behaviour varies. Sessions therefore instantiate games with this
#: fixed seed, while trace/user seeds steer the behaviour models.
GAME_CONTENT_SEED = 0

#: Names in complexity order (the canonical iteration order).
GAME_NAMES: Tuple[str, ...] = tuple(info.name for info in _CATALOGUE)


def game_info(name: str) -> GameInfo:
    """Catalogue entry for ``name``."""
    try:
        return GAMES[name]
    except KeyError:
        raise UnknownGameError(
            f"unknown game {name!r}; choose from {', '.join(GAME_NAMES)}"
        ) from None


def create_game(name: str, seed: int = 0) -> Game:
    """Instantiate a fresh game by catalogue name."""
    return game_info(name).cls(seed=seed)


#: Attributes :meth:`Game.__init__` installs; a game whose constructor
#: adds anything else cannot be template-cloned and falls back to
#: :func:`create_game` (``None`` marks that case in the cache).
_BASE_GAME_ATTRS = frozenset(
    ("seed", "state", "screen", "extern_source", "events_processed")
)

#: ``(name, seed) -> (cls, initial state cells)`` — or ``None`` when the
#: game is not safely cloneable. Populated lazily; content is identical
#: for every instance because ``build_state`` is pure in ``seed``.
_TEMPLATE_CACHE: Dict[
    Tuple[str, int],
    Optional[Tuple[Type[Game], Tuple[Tuple[str, Any, int], ...]]],
] = {}


def fresh_game(name: str, seed: int = 0) -> Game:
    """Like :func:`create_game`, but clones a cached initial state.

    ``build_state`` regenerates the same content (dealt boards, shuffled
    decks) on every call; the per-device session loop creates games by
    the hundred thousand, so this caches one template's initial state
    cells per ``(name, seed)`` and rebuilds instances from them. Cells
    hold only immutable values (ints, strings, tuples — the state-store
    contract every game follows), so sharing them across clones is safe.
    Games whose constructors install attributes beyond the base
    :class:`~repro.games.base.Game` set are detected once and served by
    :func:`create_game` instead.
    """
    key = (name, seed)
    cached = _TEMPLATE_CACHE.get(key)
    if cached is None:
        if key in _TEMPLATE_CACHE:  # known non-cloneable
            return create_game(name, seed)
        template = create_game(name, seed)
        if set(template.__dict__) != _BASE_GAME_ATTRS:
            _TEMPLATE_CACHE[key] = None
            return template
        cells = tuple(
            (field.name, field.value, field.nbytes) for field in template.state
        )
        _TEMPLATE_CACHE[key] = (type(template), cells)
        return template
    cls, cells = cached
    game = cls.__new__(cls)
    game.seed = seed
    game.state = StateStore.from_cells(cells)
    game.screen = {}
    game.extern_source = ExternSource(seed=seed)
    game.events_processed = 0
    return game
