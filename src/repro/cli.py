"""Command-line interface: ``python -m repro <command>``.

Exposes the library's main workflows without writing code:

* ``list-games`` — the seven-game catalogue;
* ``session`` — run one baseline session and print its energy summary;
* ``snip`` — profile a game, ship the table, evaluate on a fresh session;
* ``experiment`` — regenerate one paper figure/table by id;
* ``devreport`` — the Option-1 developer-intervention report;
* ``ota`` / ``ota-info`` — write and inspect the over-the-air table file;
* ``fleet`` — the parallel fleet-simulation engine (``--jobs N``,
  checkpoint/resume, deterministic aggregate report; with
  ``--challenger-fraction`` it stages a registry challenger on a
  cohort of the fleet and acts on the comparison);
* ``registry`` — the versioned SnipPackage registry
  (``list|show|publish|promote|rollback|gc``);
* ``serve`` — the continuous profile -> train -> ship daemon
  (crash-resumable cycle ledger, report-queue backpressure,
  clean SIGTERM/SIGINT shutdown; see ``docs/SERVICE.md``);
* ``cache`` — inspect or clear the on-disk package cache.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.experiments import EXPERIMENTS, run_experiment
from repro.core.config import SnipConfig
from repro.core.devreport import build_developer_report
from repro.core.fastpath import disable_batching
from repro.core.profiler import CloudProfiler
from repro.core.runtime import SnipRuntime
from repro.core.serialization import dump_table, load_table
from repro.games.registry import GAME_CONTENT_SEED, GAME_NAMES, GAMES, create_game
from repro.soc.component import ComponentGroup
from repro.soc.soc import snapdragon_821
from repro.units import format_bytes
from repro.users.sessions import run_baseline_session
from repro.users.tracegen import generate_events


def _parse_seeds(raw: str) -> List[int]:
    try:
        return [int(chunk) for chunk in raw.split(",") if chunk.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad seed list: {raw!r}") from None


def _add_cache_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--no-cache", action="store_true",
        help="profile from scratch, bypassing the on-disk package cache",
    )


def _cache_mode(args) -> Optional[str]:
    """CloudProfiler ``cache`` argument for one profiling command."""
    return None if getattr(args, "no_cache", False) else "auto"


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SNIP (IISWC 2020) reproduction toolkit",
    )
    parser.add_argument(
        "--no-batch", action="store_true",
        help="run the scalar reference pipelines instead of the columnar "
             "fast path (outputs are byte-identical either way)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list-games", help="show the workload catalogue")

    session = commands.add_parser("session", help="run one baseline session")
    session.add_argument("game", choices=GAME_NAMES)
    session.add_argument("--seed", type=int, default=1)
    session.add_argument("--duration", type=float, default=60.0)

    snip = commands.add_parser("snip", help="profile, ship, and evaluate SNIP")
    snip.add_argument("game", choices=GAME_NAMES)
    snip.add_argument("--profile-seeds", type=_parse_seeds, default=[1, 2])
    snip.add_argument("--profile-duration", type=float, default=45.0)
    snip.add_argument("--eval-seed", type=int, default=7)
    snip.add_argument("--eval-duration", type=float, default=45.0)
    _add_cache_flag(snip)

    experiment = commands.add_parser(
        "experiment", help="regenerate one paper figure/table"
    )
    experiment.add_argument("id", choices=sorted(EXPERIMENTS))
    experiment.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for experiments that support fan-out",
    )

    devreport = commands.add_parser(
        "devreport", help="developer-intervention report (Option 1)"
    )
    devreport.add_argument("game", choices=GAME_NAMES)
    devreport.add_argument("--profile-seeds", type=_parse_seeds, default=[1, 2])
    devreport.add_argument("--profile-duration", type=float, default=30.0)
    _add_cache_flag(devreport)

    ota = commands.add_parser("ota", help="build and write the OTA table file")
    ota.add_argument("game", choices=GAME_NAMES)
    ota.add_argument("--out", required=True)
    ota.add_argument("--profile-seeds", type=_parse_seeds, default=[1, 2])
    ota.add_argument("--profile-duration", type=float, default=45.0)
    _add_cache_flag(ota)

    ota_info = commands.add_parser("ota-info", help="inspect an OTA table file")
    ota_info.add_argument("path")

    commands.add_parser(
        "summary", help="quick paper-vs-measured digest (Figs. 2-4, 6, 8)"
    )

    federated = commands.add_parser(
        "federate", help="build a fleet table from per-device statistics"
    )
    federated.add_argument("game", choices=GAME_NAMES)
    federated.add_argument("--devices", type=int, default=4)
    federated.add_argument("--sessions", type=int, default=2)
    federated.add_argument("--duration", type=float, default=30.0)
    _add_cache_flag(federated)

    fleet = commands.add_parser(
        "fleet", help="simulate a device fleet across a worker pool"
    )
    fleet.add_argument("--game", choices=GAME_NAMES, default="candy_crush")
    fleet.add_argument("--devices", type=int, default=50)
    fleet.add_argument("--sessions", type=int, default=1)
    fleet.add_argument("--duration", type=float, default=10.0)
    fleet.add_argument("--seed", type=int, default=0)
    fleet.add_argument("--jobs", type=int, default=1)
    fleet.add_argument(
        "--executor", choices=("auto", "serial", "process", "queue"),
        default="auto", dest="executor_kind",
        help="execution backend: auto picks serial/process from --jobs; "
             "queue bounds in-flight work for huge fleets",
    )
    fleet.add_argument("--shard-size", type=int, default=8)
    fleet.add_argument(
        "--max-live-shards", type=int, default=None, metavar="N",
        help="cap on shard results held in memory awaiting their fold "
             "turn (overflow spills to disk)",
    )
    fleet.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report rendering (both byte-identical across schedules)",
    )
    fleet.add_argument(
        "--checkpoint", default=None, metavar="DIR",
        help="run directory for checkpoint/resume of the sweep",
    )
    fleet.add_argument(
        "--no-federate", action="store_true",
        help="skip the federated statistics pass",
    )
    fleet.add_argument(
        "--no-energy", action="store_true",
        help="skip the per-device energy/baseline sessions",
    )
    fleet.add_argument("--profile-duration", type=float, default=15.0)
    fleet.add_argument(
        "--progress", action="store_true",
        help="stream shard progress to stderr (never part of the report)",
    )
    fleet.add_argument(
        "--challenger-fraction", type=float, default=0.0, metavar="F",
        help="stage a registry challenger on this fleet fraction "
             "(0 disables the cohort split)",
    )
    fleet.add_argument(
        "--challenger-version", type=int, default=None, metavar="N",
        help="registry version to trial (default: the latest candidate)",
    )
    fleet.add_argument(
        "--registry", default=None, metavar="DIR",
        help="registry directory for staged rollouts (default: "
             "$REPRO_SNIP_REGISTRY_DIR or ~/.cache/repro-snip/registry)",
    )
    _add_cache_flag(fleet)

    serve = commands.add_parser(
        "serve",
        help="run the continuous profile -> train -> ship daemon",
    )
    serve.add_argument("--game", choices=GAME_NAMES, required=True)
    serve.add_argument(
        "--run-dir", required=True, metavar="DIR",
        help="service run directory (ledger, report queue, per-cycle "
             "fleet checkpoints; resumable after a kill)",
    )
    serve.add_argument(
        "--cycles", type=int, default=None, metavar="N",
        help="stop once the ledger holds N complete cycles "
             "(default: run until SIGTERM/SIGINT)",
    )
    serve.add_argument("--jobs", type=int, default=1)
    serve.add_argument("--devices", type=int, default=8)
    serve.add_argument("--sessions", type=int, default=1)
    serve.add_argument("--duration", type=float, default=5.0)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--shard-size", type=int, default=4)
    serve.add_argument(
        "--profile-seeds", type=_parse_seeds, default=[1],
        help="base profiling corpus (adopted device seeds ride along)",
    )
    serve.add_argument("--profile-duration", type=float, default=8.0)
    serve.add_argument(
        "--max-profile-seeds", type=int, default=8,
        help="cap on the profiling corpus (oldest adopted seeds drop)",
    )
    serve.add_argument(
        "--seeds-per-cycle", type=int, default=1,
        help="worst-missing devices adopted into the corpus per cycle",
    )
    serve.add_argument(
        "--max-batches-per-cycle", type=int, default=4,
        help="backpressure: report batches one ingest claims; a deeper "
             "backlog is merged into later cycles",
    )
    serve.add_argument(
        "--ungated-cycles", type=int, default=1,
        help="early cycles promote with permissive floors (bootstrap)",
    )
    serve.add_argument(
        "--challenger-fraction", type=float, default=0.0, metavar="F",
        help="ship candidates via staged rollout on this fleet fraction "
             "(0 uses offline gated promotion)",
    )
    serve.add_argument(
        "--eval-duration", type=float, default=20.0,
        help="held-out session length for candidate metrics",
    )
    serve.add_argument(
        "--measure-energy", action="store_true",
        help="measure candidate energy on the held-out session "
             "(the expensive half of publish)",
    )
    serve.add_argument(
        "--registry", default=None, metavar="DIR",
        help="registry directory (default: <run-dir>/registry)",
    )
    serve.add_argument(
        "--max-live-shards", type=int, default=None, metavar="N",
        help="cap on shard results held in memory awaiting their fold turn",
    )
    serve.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="stdout rendering: text summary or the canonical cycle "
             "ledger as a single JSON document",
    )
    serve.add_argument(
        "--quiet", action="store_true",
        help="suppress per-cycle progress lines on stderr",
    )

    cache = commands.add_parser(
        "cache", help="inspect or clear the on-disk package cache"
    )
    cache.add_argument("action", choices=("stats", "clear"))
    cache.add_argument(
        "--dir", default=None, metavar="DIR",
        help="cache directory (default: $REPRO_SNIP_CACHE_DIR "
             "or ~/.cache/repro-snip)",
    )
    cache.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="stats report format",
    )

    registry = commands.add_parser(
        "registry",
        help="the versioned SnipPackage registry "
             "(publish, promote, rollback, gc)",
    )
    registry.add_argument(
        "action",
        choices=("list", "show", "publish", "promote", "rollback", "gc"),
    )
    registry.add_argument(
        "--dir", default=None, metavar="DIR",
        help="registry directory (default: $REPRO_SNIP_REGISTRY_DIR "
             "or ~/.cache/repro-snip/registry)",
    )
    registry.add_argument(
        "--game", choices=GAME_NAMES, default=None,
        help="registry slot to act on (required except for list)",
    )
    registry.add_argument(
        "--version", type=int, default=None, metavar="N",
        help="entry version for promote/rollback (defaults: latest "
             "candidate / previous champion)",
    )
    registry.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format for list/show",
    )
    registry.add_argument("--profile-seeds", type=_parse_seeds, default=[1, 2])
    registry.add_argument("--profile-duration", type=float, default=45.0)
    registry.add_argument(
        "--no-energy", action="store_true",
        help="publish without the energy measurement (skips its floor)",
    )
    registry.add_argument(
        "--min-hit-rate", type=float, default=0.0,
        help="promotion floor: table hit rate",
    )
    registry.add_argument(
        "--min-accuracy", type=float, default=0.98,
        help="promotion floor: selection accuracy",
    )
    registry.add_argument(
        "--min-energy-saved", type=float, default=0.0,
        help="promotion floor: energy saved vs Max-CPU",
    )
    registry.add_argument(
        "--max-table-bytes", type=int, default=0,
        help="promotion ceiling on shipped table size (0 disables)",
    )

    lint = commands.add_parser(
        "lint", help="run the repro static-analysis rule pack"
    )
    lint.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files/directories to lint (default: the installed repro package)",
    )
    lint.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (json is what CI consumes; sarif uploads "
        "to GitHub code scanning)",
    )
    lint.add_argument(
        "--rules", default=None, metavar="ID[,ID...]",
        help="run only these rule ids (default: all registered rules)",
    )
    lint.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="accepted-findings file; findings it covers do not fail the run",
    )
    lint.add_argument(
        "--write-baseline", default=None, metavar="FILE",
        help="write the run's findings as a new baseline and exit 0",
    )
    lint.add_argument(
        "--prune", action="store_true",
        help="with --baseline: rewrite the baseline file keeping only "
        "the entries findings still consume",
    )
    lint.add_argument(
        "--cache", default=None, metavar="FILE",
        help="incremental-analysis cache file; unchanged files replay "
        "their cached outcome instead of re-analysing",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="print the registered rule ids and exit",
    )

    return parser


# -- command implementations ----------------------------------------------


def _cmd_list_games(out) -> int:
    for name in GAME_NAMES:
        info = GAMES[name]
        print(f"{name:14s} {info.category:16s} {info.display_name}", file=out)
    return 0


def _cmd_session(args, out) -> int:
    result = run_baseline_session(args.game, seed=args.seed,
                                  duration_s=args.duration)
    report = result.report
    print(f"game:            {args.game}", file=out)
    print(f"events:          {len(result.events)}", file=out)
    print(f"energy:          {report.total_joules:.1f} J "
          f"({result.average_watts:.2f} W)", file=out)
    print(f"battery life:    {result.battery_hours:.1f} h", file=out)
    print(f"useless events:  {result.useless_user_fraction:.1%}", file=out)
    for group in ComponentGroup:
        print(f"  {group.value:7s} {report.group_fraction(group):6.1%}", file=out)
    return 0


def _cmd_snip(args, out) -> int:
    config = SnipConfig()
    profiler = CloudProfiler(config, cache=_cache_mode(args))
    package = profiler.build_package_from_sessions(
        args.game, seeds=args.profile_seeds, duration_s=args.profile_duration
    )
    print(f"table: {package.table.entry_count} entries, "
          f"{format_bytes(package.table_bytes)} "
          f"({package.shrink_factor:.0f}x below naive)", file=out)
    soc = snapdragon_821()
    runtime = SnipRuntime(
        soc, create_game(args.game, seed=GAME_CONTENT_SEED), package.table, config
    )
    clock = 0.0
    for event in generate_events(args.game, args.eval_seed, args.eval_duration):
        if event.timestamp > clock:
            soc.advance_time(event.timestamp - clock)
            clock = event.timestamp
        runtime.deliver(event)
    soc.advance_time(max(0.0, args.eval_duration - clock))
    baseline = run_baseline_session(
        args.game, seed=args.eval_seed, duration_s=args.eval_duration
    )
    savings = 1 - soc.meter.total_joules / baseline.report.total_joules
    print(f"savings:  {savings:.1%}", file=out)
    print(f"coverage: {runtime.stats.coverage:.1%}", file=out)
    print(f"hit rate: {runtime.stats.hit_rate:.1%}", file=out)
    return 0


def _cmd_experiment(args, out) -> int:
    import inspect

    kwargs = {}
    if getattr(args, "jobs", 1) > 1:
        from repro.fleet.executors import make_executor

        driver = EXPERIMENTS[args.id]
        if "executor" in inspect.signature(driver).parameters:
            kwargs["executor"] = make_executor(args.jobs)
        else:
            print(f"note: {args.id} does not fan out; --jobs ignored",
                  file=sys.stderr)
    result = run_experiment(args.id, **kwargs)
    print(result.to_text(), file=out)
    return 0


def _cmd_devreport(args, out) -> int:
    profiler = CloudProfiler(SnipConfig(), cache=_cache_mode(args))
    package = profiler.build_package_from_sessions(
        args.game, seeds=args.profile_seeds, duration_s=args.profile_duration
    )
    report = build_developer_report(args.game, package.analysis, package.selection)
    print(report.to_text(), file=out)
    return 0


def _cmd_ota(args, out) -> int:
    profiler = CloudProfiler(SnipConfig(), cache=_cache_mode(args))
    package = profiler.build_package_from_sessions(
        args.game, seeds=args.profile_seeds, duration_s=args.profile_duration
    )
    nbytes = dump_table(package.table, args.out)
    print(f"wrote {args.out}: {format_bytes(nbytes)} "
          f"({package.table.entry_count} entries)", file=out)
    return 0


def _cmd_summary(out) -> int:
    from repro.analysis.summary import run_summary

    summary = run_summary()
    print(summary.to_text(), file=out)
    print(
        "all checks hold" if summary.all_hold else "some checks deviate",
        file=out,
    )
    return 0 if summary.all_hold else 1


def _cmd_federate(args, out) -> int:
    from repro.core.federated import federate
    from repro.users.population import Population

    config = SnipConfig()
    package = CloudProfiler(config, cache=_cache_mode(args)).build_package_from_sessions(
        args.game, seeds=[1], duration_s=args.duration
    )
    population = Population(seed=11)
    per_device = {
        device_id: [
            population.user_trace(args.game, device_id, session, args.duration)
            for session in range(args.sessions)
        ]
        for device_id in range(args.devices)
    }
    table, uplink = federate(args.game, per_device, package.selection, config)
    print(f"fleet: {args.devices} devices x {args.sessions} sessions "
          f"({population.census(args.devices)})", file=out)
    print(f"fleet table: {table.entry_count} entries, "
          f"{format_bytes(table.total_bytes)}", file=out)
    print(f"uplink (statistics only): {format_bytes(uplink)}", file=out)
    return 0


def _cmd_fleet(args, out) -> int:
    from repro.fleet import FleetEngine, FleetSpec, TelemetryBus, make_executor
    from repro.fleet.engine import DEFAULT_MAX_LIVE_SHARDS
    from repro.fleet.telemetry import progress_printer

    spec = FleetSpec(
        game_name=args.game,
        devices=args.devices,
        sessions_per_device=args.sessions,
        duration_s=args.duration,
        seed=args.seed,
        shard_size=args.shard_size,
        profile_duration_s=args.profile_duration,
        measure_energy=not args.no_energy,
        federate=not args.no_federate,
        challenger_fraction=args.challenger_fraction,
    )
    telemetry = TelemetryBus()
    if args.progress:
        telemetry.subscribe(progress_printer(sys.stderr))
    executor = make_executor(args.jobs, kind=args.executor_kind)
    max_live = (
        args.max_live_shards
        if args.max_live_shards is not None
        else DEFAULT_MAX_LIVE_SHARDS
    )
    if args.challenger_fraction > 0:
        from repro.errors import PromotionError, RegistryError
        from repro.registry import PackageRegistry, run_staged_rollout

        registry = (
            PackageRegistry(args.registry) if args.registry else PackageRegistry()
        )
        try:
            result = run_staged_rollout(
                registry,
                args.game,
                spec,
                challenger_version=args.challenger_version,
                executor=executor,
                telemetry=telemetry,
                checkpoint=args.checkpoint,
                max_live_shards=max_live,
            )
        except (RegistryError, PromotionError) as exc:
            print(f"fleet rollout error: {exc}", file=sys.stderr)
            return 1
        if args.format == "json":
            print(result.report.to_json(), file=out)
        else:
            print(result.to_text(), file=out)
        return 0
    engine = FleetEngine(
        spec,
        executor=executor,
        telemetry=telemetry,
        checkpoint=args.checkpoint,
        cache=_cache_mode(args),
        max_live_shards=max_live,
    )
    report = engine.run()
    print(report.to_json() if args.format == "json" else report.to_text(), file=out)
    return 0


def _cmd_serve(args, out) -> int:
    from repro.errors import ServiceError
    from repro.fleet import TelemetryBus, make_executor
    from repro.fleet.engine import DEFAULT_MAX_LIVE_SHARDS
    from repro.registry import PackageRegistry
    from repro.service import ServiceConfig, SnipService
    from repro.service.daemon import service_progress_printer

    config = ServiceConfig(
        game_name=args.game,
        devices=args.devices,
        sessions_per_device=args.sessions,
        session_duration_s=args.duration,
        seed=args.seed,
        shard_size=args.shard_size,
        base_profile_seeds=tuple(args.profile_seeds),
        profile_duration_s=args.profile_duration,
        max_profile_seeds=args.max_profile_seeds,
        seeds_per_cycle=args.seeds_per_cycle,
        max_batches_per_cycle=args.max_batches_per_cycle,
        ungated_cycles=args.ungated_cycles,
        challenger_fraction=args.challenger_fraction,
        measure_candidate_energy=args.measure_energy,
        eval_duration_s=args.eval_duration,
    )
    telemetry = TelemetryBus()
    if not args.quiet:
        # Progress narrates on stderr only: --format json keeps stdout
        # a single parseable document.
        telemetry.subscribe(service_progress_printer(sys.stderr))
    try:
        service = SnipService(
            config,
            args.run_dir,
            registry=PackageRegistry(args.registry) if args.registry else None,
            executor=make_executor(args.jobs),
            telemetry=telemetry,
            max_live_shards=(
                args.max_live_shards
                if args.max_live_shards is not None
                else DEFAULT_MAX_LIVE_SHARDS
            ),
        )
        result = service.run(cycles=args.cycles)
    except ServiceError as exc:
        print(f"serve error: {exc}", file=sys.stderr)
        return 1
    if args.format == "json":
        out.write(service.ledger.to_json())
        return 0
    print(
        f"serve: {result.cycles_completed} cycles complete in "
        f"{result.run_dir}"
        + (" (stopped by signal; resumable)" if result.stopped else ""),
        file=out,
    )
    for index in range(service.ledger.cycle_count):
        ship = service.ledger.stage(index, "ship")
        if ship is None:
            print(f"  cycle {index}: in flight (resumable)", file=out)
            continue
        champion = (
            f"champion v{ship['champion_version_after']}"
            if ship["champion_version_after"] is not None
            else "no champion"
        )
        print(
            f"  cycle {index}: {ship['mode']} | "
            f"{'promoted' if ship['promoted'] else 'kept'} -> {champion} | "
            f"{ship['devices']} devices, {ship['misses']} misses, "
            f"savings {ship['savings']:.2%}",
            file=out,
        )
    return 0


def _cmd_lint(args, out) -> int:
    import os

    from repro import lint
    from repro.errors import LintError

    if args.list_rules:
        for rule_id in lint.iter_rule_ids():
            print(f"{rule_id:20s} {lint.RULE_REGISTRY[rule_id].description}",
                  file=out)
        return 0
    paths = args.paths or [os.path.dirname(os.path.abspath(__file__))]
    rule_ids = None
    if args.rules:
        rule_ids = [chunk.strip() for chunk in args.rules.split(",")
                    if chunk.strip()]
    if args.prune and not args.baseline:
        print("lint error: --prune requires --baseline", file=sys.stderr)
        return 2
    try:
        baseline = lint.load_baseline(args.baseline) if args.baseline else None
        cache = lint.AnalysisCache(args.cache) if args.cache else None
        result = lint.lint_paths(
            paths, rule_ids=rule_ids, baseline=baseline, cache=cache
        )
    except LintError as exc:
        print(f"lint error: {exc}", file=sys.stderr)
        return 2
    if args.write_baseline:
        written = lint.write_baseline(args.write_baseline, result)
        print(f"wrote {args.write_baseline}: {written} accepted finding keys",
              file=out)
        return 0
    # Hygiene drift goes to stderr: visible in CI logs, invisible to
    # anything parsing the report on stdout.
    for key in result.stale_baseline:
        print(f"lint: stale baseline entry: {key}", file=sys.stderr)
    for s_path, s_line, s_rule in result.unused_suppressions:
        where = f"{s_path}:{s_line}" if s_line is not None else s_path
        print(f"lint: unused suppression: {where} [{s_rule}]",
              file=sys.stderr)
    if args.prune:
        kept = lint.write_pruned_baseline(args.baseline, result)
        dropped = len(result.stale_baseline)
        print(f"pruned {args.baseline}: kept {kept} keys, "
              f"dropped {dropped} stale", file=out)
    renderers = {
        "json": lint.render_json,
        "sarif": lint.render_sarif,
        "text": lint.render_text,
    }
    print(renderers[args.format](result), file=out)
    return 0 if result.clean else 1


def _cmd_cache(args, out) -> int:
    import json

    from repro.core.package_cache import PackageCache

    store = PackageCache(args.dir) if args.dir else PackageCache()
    if args.action == "clear":
        cleared = store.clear()
        print(
            f"removed {cleared.entries} cached packages from {store.root} "
            f"({format_bytes(cleared.bytes_reclaimed)} reclaimed)",
            file=out,
        )
        return 0
    stats = store.stats()
    if args.format == "json":
        print(json.dumps(stats.to_dict(), indent=2, sort_keys=True), file=out)
        return 0
    print(f"cache dir: {stats.root}", file=out)
    print(f"entries:   {stats.entries}", file=out)
    print(f"size:      {format_bytes(stats.total_bytes)}", file=out)
    print(f"corrupt evictions: {stats.corrupt_evictions}", file=out)
    return 0


def _registry_entry_line(entry) -> str:
    metrics = entry.metrics
    energy = (
        f"{metrics.energy_saved_fraction:.1%}"
        if metrics.energy_saved_fraction is not None
        else "n/a"
    )
    return (
        f"  v{entry.version} [{entry.status}] digest {entry.digest} "
        f"source {entry.source} | hit {metrics.hit_rate:.1%} "
        f"acc {metrics.selection_accuracy:.2%} energy {energy} "
        f"fields {metrics.selected_fields} "
        f"table {format_bytes(metrics.table_bytes)}"
    )


def _cmd_registry(args, out) -> int:
    import json

    from repro.errors import PromotionError, RegistryError
    from repro.registry import (
        PackageRegistry,
        PromotionPolicy,
        publish_candidate,
    )

    registry = PackageRegistry(args.dir) if args.dir else PackageRegistry()
    config = SnipConfig()
    if args.action != "list" and not args.game:
        print(f"registry {args.action} needs --game", file=sys.stderr)
        return 2
    try:
        if args.action == "list":
            slots = [
                {
                    "game": game,
                    "config_fingerprint": fingerprint,
                    "versions": len(state.entries),
                    "champion_version": state.champion_version,
                }
                for game, fingerprint, state in registry.slots()
            ]
            if args.format == "json":
                print(json.dumps(slots, indent=2, sort_keys=True), file=out)
                return 0
            print(f"registry: {registry.root}", file=out)
            if not slots:
                print("(empty)", file=out)
            for slot in slots:
                champion = (
                    f"champion v{slot['champion_version']}"
                    if slot["champion_version"] is not None
                    else "no champion"
                )
                print(
                    f"  {slot['game']} ({slot['config_fingerprint']}): "
                    f"{slot['versions']} versions, {champion}",
                    file=out,
                )
            return 0
        if args.action == "show":
            state = registry.load_state(args.game, config)
            if args.format == "json":
                print(
                    json.dumps(state.to_dict(), indent=2, sort_keys=True),
                    file=out,
                )
                return 0
            champion = (
                f"v{state.champion_version}"
                if state.champion_version is not None
                else "none"
            )
            history = (
                " -> ".join(f"v{version}" for version in state.champion_history)
                or "none"
            )
            print(f"{args.game}: champion {champion} (history: {history})",
                  file=out)
            for version in sorted(state.entries):
                print(_registry_entry_line(state.entries[version]), file=out)
            return 0
        if args.action == "publish":
            entry, _, created = publish_candidate(
                registry,
                args.game,
                seeds=args.profile_seeds,
                duration_s=args.profile_duration,
                config=config,
                measure_energy=not args.no_energy,
            )
            verb = "published" if created else "already registered as"
            print(f"{verb} {args.game} v{entry.version} "
                  f"(digest {entry.digest})", file=out)
            return 0
        if args.action == "promote":
            policy = PromotionPolicy(
                min_hit_rate=args.min_hit_rate,
                min_selection_accuracy=args.min_accuracy,
                min_energy_saved_fraction=args.min_energy_saved,
                max_table_bytes=args.max_table_bytes,
            )
            decision = registry.promote(
                args.game, config, version=args.version, policy=policy
            )
            if decision.promoted:
                print(f"promoted v{decision.version} to champion "
                      f"(score {decision.challenger_score:.6f})", file=out)
                return 0
            print(f"rejected v{decision.version}:", file=out)
            for reason in decision.reasons:
                print(f"  - {reason}", file=out)
            return 1
        if args.action == "rollback":
            entry = registry.rollback(args.game, config, version=args.version)
            print(f"rolled back: champion is now v{entry.version} "
                  f"(digest {entry.digest})", file=out)
            return 0
        stats = registry.gc(args.game, config)
        print(
            f"gc: removed {stats.entries_removed} entries, "
            f"{stats.payloads_removed} payloads "
            f"({format_bytes(stats.bytes_reclaimed)} reclaimed)",
            file=out,
        )
        return 0
    except (RegistryError, PromotionError) as exc:
        print(f"registry error: {exc}", file=sys.stderr)
        return 1


def _cmd_ota_info(args, out) -> int:
    table = load_table(args.path)
    print(f"entries:  {table.entry_count}", file=out)
    print(f"size:     {format_bytes(table.total_bytes)}", file=out)
    for event_type in table.event_types():
        fields = ", ".join(info.name for info in table.fields_for(event_type))
        print(f"  {event_type.value}: {table.entries_for(event_type)} entries, "
              f"key = [{fields}]", file=out)
    return 0


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    if args.no_batch:
        disable_batching()
    handlers = {
        "list-games": lambda: _cmd_list_games(out),
        "session": lambda: _cmd_session(args, out),
        "snip": lambda: _cmd_snip(args, out),
        "experiment": lambda: _cmd_experiment(args, out),
        "devreport": lambda: _cmd_devreport(args, out),
        "ota": lambda: _cmd_ota(args, out),
        "ota-info": lambda: _cmd_ota_info(args, out),
        "summary": lambda: _cmd_summary(out),
        "federate": lambda: _cmd_federate(args, out),
        "fleet": lambda: _cmd_fleet(args, out),
        "cache": lambda: _cmd_cache(args, out),
        "registry": lambda: _cmd_registry(args, out),
        "serve": lambda: _cmd_serve(args, out),
        "lint": lambda: _cmd_lint(args, out),
    }
    return handlers[args.command]()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
