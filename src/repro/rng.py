"""Seeded randomness utilities.

All stochastic behaviour in the library (user gesture generation, forest
bootstrap sampling, permutation shuffles) flows through
:class:`ReproRng`, a thin wrapper over :class:`numpy.random.Generator`
that supports hierarchical forking. Forking gives every subsystem an
independent stream derived from one master seed, so adding randomness to
one subsystem never perturbs another — a property the experiment drivers
rely on for reproducible figures.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, List, Optional, Sequence, TypeVar

import numpy as np

T = TypeVar("T")

#: Default master seed used by experiment drivers when none is given.
DEFAULT_SEED = 0x5A1B


def _mix(seed: int, label: str) -> int:
    """Derive a child seed from ``seed`` and a string ``label``.

    Uses BLAKE2 so that distinct labels give statistically independent
    child seeds and the derivation is stable across platforms and Python
    hash randomization.
    """
    digest = hashlib.blake2b(
        label.encode("utf-8"), digest_size=8, key=seed.to_bytes(8, "little", signed=False)
    ).digest()
    return int.from_bytes(digest, "little")


class ReproRng:
    """A forkable, seeded random stream.

    Parameters
    ----------
    seed:
        Master seed. The same seed always produces the same stream of
        draws *and* the same child streams from :meth:`fork`.
    """

    def __init__(self, seed: int = DEFAULT_SEED) -> None:
        if seed < 0:
            raise ValueError(f"seed must be non-negative, got {seed}")
        self._seed = int(seed) & 0xFFFFFFFFFFFFFFFF

    def __getattr__(self, name: str) -> np.random.Generator:
        # The generator is built lazily: forking is pure in
        # ``(seed, label)``, so parent streams that are only ever
        # forked — the common pattern ``ReproRng(seed).fork(label)`` —
        # never pay for one. Once built it becomes a plain instance
        # attribute, so draws after the first have zero overhead.
        if name == "_gen":
            gen = np.random.default_rng(self._seed)
            self._gen = gen
            return gen
        raise AttributeError(name)

    @property
    def seed(self) -> int:
        """The seed this stream was created with."""
        return self._seed

    @property
    def generator(self) -> np.random.Generator:
        """The underlying numpy generator, for vectorised draws."""
        return self._gen

    def fork(self, label: str) -> "ReproRng":
        """Return an independent child stream named ``label``.

        Forking is a pure function of ``(seed, label)``: it does not
        advance this stream, so call order does not matter.
        """
        return ReproRng(_mix(self._seed, label))

    # -- scalar draws -------------------------------------------------

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        """One float drawn uniformly from ``[low, high)``."""
        return float(self._gen.uniform(low, high))

    def integer(self, low: int, high: int) -> int:
        """One integer drawn uniformly from ``[low, high)``."""
        if high <= low:
            raise ValueError(f"empty integer range [{low}, {high})")
        return int(self._gen.integers(low, high))

    def normal(self, mean: float = 0.0, std: float = 1.0) -> float:
        """One normal draw."""
        return float(self._gen.normal(mean, std))

    def exponential(self, mean: float) -> float:
        """One exponential draw with the given mean."""
        if mean <= 0:
            raise ValueError(f"exponential mean must be positive, got {mean}")
        return float(self._gen.exponential(mean))

    def chance(self, probability: float) -> bool:
        """Bernoulli draw: ``True`` with the given probability."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability out of [0, 1]: {probability}")
        return bool(self._gen.uniform() < probability)

    # -- collection draws ---------------------------------------------

    def choice(self, items: Sequence[T], weights: Optional[Sequence[float]] = None) -> T:
        """Pick one item, optionally with relative ``weights``."""
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        if weights is None:
            return items[self.integer(0, len(items))]
        if len(weights) != len(items):
            raise ValueError("weights must match items in length")
        probs = np.asarray(weights, dtype=float)
        total = probs.sum()
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        index = int(self._gen.choice(len(items), p=probs / total))
        return items[index]

    def sample(self, items: Sequence[T], count: int) -> List[T]:
        """Pick ``count`` distinct items without replacement."""
        if count > len(items):
            raise ValueError(f"cannot sample {count} from {len(items)} items")
        indices = self._gen.choice(len(items), size=count, replace=False)
        return [items[int(i)] for i in indices]

    def shuffled(self, items: Iterable[T]) -> List[T]:
        """Return a new shuffled list; the input is not modified."""
        out = list(items)
        self._gen.shuffle(out)  # type: ignore[arg-type]
        return out

    def permutation(self, count: int) -> np.ndarray:
        """A random permutation of ``range(count)`` as an array."""
        return self._gen.permutation(count)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ReproRng(seed={self._seed:#x})"
