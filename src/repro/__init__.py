"""SNIP: Selective Event Processing for Energy Efficient Mobile Gaming.

A faithful, laptop-scale reproduction of Rengasamy et al., IISWC 2020
(DOI 10.1109/IISWC50251.2020.00035). The package provides:

* a Snapdragon-821-class SoC energy model (:mod:`repro.soc`);
* the Android event path — sensors, hub, Binder, handlers, and an
  emulator-style deterministic replay (:mod:`repro.android`);
* seven deterministic game workloads (:mod:`repro.games`) with
  stochastic user-behaviour trace generators (:mod:`repro.users`);
* the memoization baselines the paper argues against
  (:mod:`repro.memo`), a from-scratch random forest + permutation
  feature importance (:mod:`repro.ml`);
* SNIP itself — profiler, PFI selection, lookup table, device runtime,
  continuous learning (:mod:`repro.core`);
* the evaluation schemes and drivers for every paper figure/table
  (:mod:`repro.schemes`, :mod:`repro.analysis`).

Quickstart::

    from repro import CloudProfiler, SnipConfig, SnipRuntime
    from repro import create_game, generate_events, snapdragon_821

    profiler = CloudProfiler(SnipConfig())
    package = profiler.build_package_from_sessions(
        "ab_evolution", seeds=[1, 2], duration_s=30.0)
    soc = snapdragon_821()
    runtime = SnipRuntime(soc, create_game("ab_evolution"), package.table)
    for event in generate_events("ab_evolution", seed=7, duration_s=10.0):
        runtime.deliver(event)
    print(runtime.stats.coverage)
"""

from repro.analysis import EXPERIMENTS, run_experiment
from repro.core import (
    CloudProfiler,
    ContinuousLearner,
    DeveloperOverrides,
    SnipConfig,
    SnipPackage,
    SnipRuntime,
    SnipTable,
)
from repro.games.registry import (
    GAME_CONTENT_SEED,
    GAME_NAMES,
    create_game,
    game_info,
)
from repro.schemes import (
    BaselineScheme,
    MaxCpuScheme,
    MaxIpScheme,
    NoOverheadsScheme,
    SnipScheme,
    run_scheme_session,
)
from repro.soc.soc import snapdragon_821
from repro.users.sessions import run_baseline_session
from repro.users.tracegen import generate_events, generate_trace

__version__ = "1.0.0"

__all__ = [
    "BaselineScheme",
    "CloudProfiler",
    "ContinuousLearner",
    "DeveloperOverrides",
    "EXPERIMENTS",
    "GAME_CONTENT_SEED",
    "GAME_NAMES",
    "MaxCpuScheme",
    "MaxIpScheme",
    "NoOverheadsScheme",
    "SnipConfig",
    "SnipPackage",
    "SnipRuntime",
    "SnipScheme",
    "SnipTable",
    "__version__",
    "create_game",
    "game_info",
    "generate_events",
    "generate_trace",
    "run_baseline_session",
    "run_experiment",
    "run_scheme_session",
    "snapdragon_821",
]
