"""Max IP: accelerator-side optimization [43].

Two levers, both IP-local: idle IP blocks are aggressively put to sleep
between invocations (paying wake energy on the next use), and an
invocation whose ``(ip, key)`` exactly repeats a previous one is skipped
— its output buffer is still cached. CPU work is untouched, which is
the paper's Table I scoping argument in the other direction.
"""

from __future__ import annotations

from typing import Set, Tuple

from repro.android.binder import Binder
from repro.android.dispatch import charge_delivery, charge_upkeep
from repro.android.events import Event
from repro.android.sensor_hub import SensorHub
from repro.android.sensor_manager import SensorManager
from repro.games.base import Game
from repro.schemes.base import Scheme
from repro.soc.energy import TAG_LOOKUP
from repro.soc.soc import Soc

#: Little-core cycles to check the IP-output cache per invocation.
IP_LOOKUP_CYCLES = 6_000

#: Fraction of a display refresh still paid under panel self-refresh
#: (the panel keeps emitting light; only the pipeline data path idles).
PSR_RESIDUAL = 0.35

#: IP blocks with a hardware mechanism for serving a repeat from cache:
#: the display's panel self-refresh, codec clip caches, DSP scratch
#: buffers. The 3D pipeline has no such path — identifying identical
#: render inputs is exactly what needs SNIP's table.
SKIPPABLE_IPS = frozenset({"display", "audio_codec", "video_codec", "dsp"})


class _MaxIpRunner:
    """Delivers events, sleeping idle IPs and skipping repeat calls."""

    def __init__(self, soc: Soc, game: Game) -> None:
        self.soc = soc
        self.game = game
        self.hub = SensorHub(soc)
        self.manager = SensorManager(soc)
        self.binder = Binder(soc)
        self._seen: Set[Tuple] = set()
        self._avoided_energy = 0.0
        self._executed_energy = 0.0
        self._events = 0
        self._events_with_skip = 0

    def deliver(self, event: Event) -> None:
        charge_delivery(self.soc, self.hub, self.manager, self.binder, event)
        upkeep_cycles = charge_upkeep(self.soc, self.game, event)
        self._executed_energy += self.soc.cpu.energy_for(upkeep_cycles, big=True)
        trace = self.game.process(event)
        self._events += 1

        big_cycles = trace.cpu_big_cycles
        little_cycles = trace.cpu_little_cycles
        for call in trace.cpu_funcs:  # CPU work is out of reach
            if call.big:
                big_cycles += call.cycles
            else:
                little_cycles += call.cycles
        if big_cycles:
            self.soc.cpu.execute(big_cycles, big=True)
        if little_cycles:
            self.soc.cpu.execute(little_cycles, big=False)
        self._executed_energy += self.soc.cpu.energy_for(big_cycles, big=True)
        self._executed_energy += self.soc.cpu.energy_for(little_cycles, big=False)
        if trace.memory_bytes:
            self.soc.memory.transfer(trace.memory_bytes)

        skipped_here = False
        for call in trace.ip_calls:
            block = self.soc.ip(call.ip_name)
            energy = block.energy_for(
                call.work_units, bytes_in=call.bytes_in, bytes_out=call.bytes_out
            )
            self.soc.cpu.execute(IP_LOOKUP_CYCLES, big=False, tag=TAG_LOOKUP)
            slot = (call.ip_name, call.key)
            if (
                call.ip_name in SKIPPABLE_IPS
                and call.key is not None
                and slot in self._seen
            ):
                # Exact repeat: serve the cached output buffer instead.
                if call.ip_name == "display":
                    residual = energy * PSR_RESIDUAL
                    block.charge(residual)
                    self._executed_energy += residual
                    self._avoided_energy += energy - residual
                else:
                    self._avoided_energy += energy
                skipped_here = True
                continue
            if call.key is not None:
                self._seen.add(slot)
            block.invoke(
                call.work_units, bytes_in=call.bytes_in, bytes_out=call.bytes_out
            )
            self._executed_energy += energy
        if skipped_here:
            self._events_with_skip += 1
        # Aggressive power management: everything idle goes to sleep,
        # except the display pipeline, which scans out continuously.
        for name, block in self.soc.ips.items():
            if name != "display":
                block.sleep()

    @property
    def coverage(self) -> float:
        """Energy-weighted share of IP+CPU processing that was skipped."""
        total = self._avoided_energy + self._executed_energy
        return self._avoided_energy / total if total else 0.0

    @property
    def hit_rate(self) -> float:
        """Fraction of events where at least one IP call was skipped."""
        return self._events_with_skip / self._events if self._events else 0.0


class MaxIpScheme(Scheme):
    """Upper bound on IP-only optimization (Table I's IP column)."""

    name = "max_ip"

    def make_runner(self, soc: Soc, game: Game) -> _MaxIpRunner:
        return _MaxIpRunner(soc, game)
