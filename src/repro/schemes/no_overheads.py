"""No Overheads: SNIP with free table probes (the headroom line).

Identical decisions to SNIP, but the lookup costs — hashing, comparing
necessary inputs, loading entries — are waived. The gap between this
scheme and SNIP is exactly Fig. 11c's overhead bar.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.android.events import Event
from repro.core.config import SnipConfig
from repro.core.runtime import SnipRuntime
from repro.schemes.snip_scheme import (
    DEFAULT_PROFILE_DURATION_S,
    DEFAULT_PROFILE_SEEDS,
    SnipScheme,
    _SnipRunner,
)


class _FreeLookupRuntime(SnipRuntime):
    """SNIP runtime whose probes cost nothing."""

    def _charge_probe(self, event: Event) -> int:
        return self.table.comparison_bytes(event.event_type)


class NoOverheadsScheme(SnipScheme):
    """SNIP minus every lookup cost (scope-for-future-work line)."""

    name = "no_overheads"

    def __init__(
        self,
        config: Optional[SnipConfig] = None,
        profile_seeds: Sequence[int] = DEFAULT_PROFILE_SEEDS,
        profile_duration_s: float = DEFAULT_PROFILE_DURATION_S,
    ) -> None:
        super().__init__(config, profile_seeds, profile_duration_s)

    def make_runner(self, soc, game) -> _SnipRunner:
        package = self.prepare(game.name)
        return _SnipRunner(
            _FreeLookupRuntime(soc, game, package.table.clone(), self.config)
        )
