"""SNIP as an evaluation scheme: cloud profile + device runtime."""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Union

from repro.core.config import SnipConfig
from repro.core.package_cache import PackageCache
from repro.core.profiler import CloudProfiler, SnipPackage
from repro.core.runtime import SnipRuntime
from repro.errors import SchemeError
from repro.games.base import Game
from repro.registry.publish import publish_candidate
from repro.registry.records import RegistryEntry
from repro.registry.store import PackageRegistry
from repro.schemes.base import Scheme
from repro.soc.soc import Soc

#: Session seeds used to build each game's profile (disjoint from the
#: evaluation seeds used by the benches).
DEFAULT_PROFILE_SEEDS = (1, 2, 3)
DEFAULT_PROFILE_DURATION_S = 60.0


class _SnipRunner:
    """Adapter exposing the scheme counters over :class:`SnipRuntime`."""

    def __init__(self, runtime: SnipRuntime) -> None:
        self._runtime = runtime

    def deliver(self, event) -> None:
        self._runtime.deliver(event)

    @property
    def coverage(self) -> float:
        return self._runtime.stats.coverage

    @property
    def hit_rate(self) -> float:
        return self._runtime.stats.hit_rate

    @property
    def stats(self):
        return self._runtime.stats


class SnipScheme(Scheme):
    """The full SNIP pipeline, with per-game package caching.

    ``prepare`` runs the cloud profiler once per game; subsequent
    sessions reuse the shipped table (each session gets a *fresh copy*
    of the table so online learning in one run cannot leak into the
    next).
    """

    name = "snip"

    def __init__(
        self,
        config: Optional[SnipConfig] = None,
        profile_seeds: Sequence[int] = DEFAULT_PROFILE_SEEDS,
        profile_duration_s: float = DEFAULT_PROFILE_DURATION_S,
        cache: Union[PackageCache, None, str] = "auto",
        registry: Optional[PackageRegistry] = None,
    ) -> None:
        """``registry`` binds the scheme to a package registry.

        With one, ``prepare`` serves the registered *champion* for a
        game whenever the slot has one — the deployed package, not
        whatever a fresh profiling run would produce — and only falls
        back to profiling for games the registry has never judged.
        """
        self.config = config or SnipConfig()
        self.profile_seeds = tuple(profile_seeds)
        self.profile_duration_s = profile_duration_s
        self.cache = cache
        self.registry = registry
        self._packages: Dict[str, SnipPackage] = {}

    def prepare(self, game_name: str) -> SnipPackage:
        """Build (or fetch the cached) SNIP package for a game.

        Caching is two-level: an in-memory per-scheme dict, then the
        profiler's content-addressed on-disk store (``cache``, forwarded
        to :class:`CloudProfiler`), so repeated ``prepare`` calls across
        processes reuse one profiling run. A bound registry takes
        precedence over both: its champion *is* the shipped package.
        """
        if game_name not in self._packages:
            if self.registry is not None:
                champion = self.registry.load_state(
                    game_name, self.config
                ).champion()
                if champion is not None:
                    self._packages[game_name] = self.registry.load_package(
                        champion
                    )
                    return self._packages[game_name]
            profiler = CloudProfiler(self.config, cache=self.cache)
            self._packages[game_name] = profiler.build_package_from_sessions(
                game_name, seeds=self.profile_seeds, duration_s=self.profile_duration_s
            )
        return self._packages[game_name]

    def publish(self, game_name: str, measure_energy: bool = True) -> RegistryEntry:
        """Register this scheme's profile as a candidate package.

        Profiles with the scheme's seeds/duration through the bound
        registry's cache, measures the gated metrics, and publishes; the
        candidate still has to win the promotion pass before
        ``prepare`` (or any fleet) will serve it.
        """
        if self.registry is None:
            raise SchemeError(
                "SnipScheme has no registry bound; pass registry= to publish"
            )
        entry, package, _ = publish_candidate(
            self.registry,
            game_name,
            seeds=self.profile_seeds,
            duration_s=self.profile_duration_s,
            config=self.config,
            measure_energy=measure_energy,
        )
        return entry

    def package_for(self, game_name: str) -> SnipPackage:
        """The prepared package (raises if ``prepare`` never ran)."""
        try:
            return self._packages[game_name]
        except KeyError:
            raise SchemeError(
                f"SnipScheme.prepare({game_name!r}) must run before sessions"
            ) from None

    def make_runner(self, soc: Soc, game: Game) -> _SnipRunner:
        package = self.prepare(game.name)
        return _SnipRunner(
            SnipRuntime(soc, game, package.table.clone(), self.config)
        )
