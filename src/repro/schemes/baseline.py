"""Baseline: process every event fully (no optimization)."""

from __future__ import annotations

from repro.android.dispatch import EventLoop
from repro.games.base import Game
from repro.schemes.base import Scheme
from repro.soc.soc import Soc


class _BaselineRunner:
    """EventLoop wrapper exposing the scheme counters."""

    def __init__(self, soc: Soc, game: Game) -> None:
        self._loop = EventLoop(soc, game)

    def deliver(self, event) -> None:
        self._loop.deliver(event)

    @property
    def coverage(self) -> float:
        """Baseline short-circuits nothing."""
        return 0.0

    @property
    def hit_rate(self) -> float:
        """Baseline has no table to hit."""
        return 0.0


class BaselineScheme(Scheme):
    """Unoptimized execution: the Fig. 11 reference point."""

    name = "baseline"

    def make_runner(self, soc: Soc, game: Game) -> _BaselineRunner:
        return _BaselineRunner(soc, game)
