"""Scheme interface and the shared session runner.

A scheme supplies a per-event ``deliver`` implementation; the runner
feeds it the same generated event stream the baseline sees, advancing
simulated time in between, and packages the ledger plus the scheme's
short-circuit statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.fastpath import batching_enabled
from repro.games.base import Game
from repro.soc.energy import ColumnarMeter, EnergyReport, TAG_LOOKUP
from repro.soc.soc import Soc, snapdragon_821
from repro.games.registry import GAME_CONTENT_SEED, create_game, fresh_game
from repro.users.tracegen import columnar_session, generate_events


@dataclass
class SchemeRun:
    """Result of one scheme session."""

    scheme_name: str
    game_name: str
    seed: int
    duration_s: float
    report: EnergyReport
    soc: Soc
    #: Cycle-weighted fraction of execution the scheme short-circuited.
    coverage: float
    #: Fraction of events the scheme's table/cache hit (0 for baseline).
    hit_rate: float

    @property
    def average_watts(self) -> float:
        """Mean device power over the session."""
        return self.report.total_joules / self.duration_s

    @property
    def battery_hours(self) -> float:
        """Projected hours to drain a full battery at this power."""
        return self.soc.battery.hours_to_empty(self.average_watts)

    @property
    def lookup_overhead_fraction(self) -> float:
        """Share of total energy spent probing lookup tables."""
        return self.report.tag_fraction(TAG_LOOKUP)

    def savings_vs(self, baseline: "SchemeRun") -> float:
        """Energy saved relative to a baseline run of the same session."""
        if baseline.report.total_joules <= 0:
            return 0.0
        return 1.0 - self.report.total_joules / baseline.report.total_joules


class Scheme:
    """One optimization scheme: builds a runner for a (soc, game) pair."""

    name = "abstract"

    def prepare(self, game_name: str) -> None:
        """One-time setup before sessions (e.g. build the SNIP table)."""

    def make_runner(self, soc: Soc, game: Game):
        """Return an object exposing ``deliver(event)`` plus counters.

        The runner must expose ``coverage`` and ``hit_rate`` attributes
        (floats) when the session ends.
        """
        raise NotImplementedError


def run_scheme_session_reference(
    scheme: Scheme,
    game_name: str,
    seed: int = 0,
    duration_s: float = 60.0,
    soc: Optional[Soc] = None,
) -> SchemeRun:
    """Scalar golden reference for :func:`run_scheme_session`.

    Kept verbatim: the equivalence suite asserts the batched session
    runner produces identical :class:`SchemeRun` reports against this,
    and ``REPRO_SNIP_NO_BATCH=1`` routes callers back through it.
    """
    soc = soc or snapdragon_821()
    game = create_game(game_name, seed=GAME_CONTENT_SEED)
    runner = scheme.make_runner(soc, game)
    clock = 0.0
    for event in generate_events(game_name, seed, duration_s):
        if event.timestamp > clock:
            soc.advance_time(event.timestamp - clock)
            clock = event.timestamp
        runner.deliver(event)
    if duration_s > clock:
        soc.advance_time(duration_s - clock)
    return _package_run(scheme, game_name, seed, duration_s, soc, runner)


def run_scheme_session(
    scheme: Scheme,
    game_name: str,
    seed: int = 0,
    duration_s: float = 60.0,
    soc: Optional[Soc] = None,
) -> SchemeRun:
    """Run one full session under ``scheme`` and collect the ledger.

    Columnar fast path: the event stream is generated in
    structure-of-arrays form (each event materialised exactly once) and
    the ledger — when the SoC is ours to build — is an append-only
    :class:`~repro.soc.energy.ColumnarMeter` folded once at report
    time. Reports are byte-identical to the scalar reference.
    """
    if not batching_enabled():
        return run_scheme_session_reference(
            scheme, game_name, seed=seed, duration_s=duration_s, soc=soc
        )
    soc = soc or snapdragon_821(meter=ColumnarMeter())
    game = fresh_game(game_name, seed=GAME_CONTENT_SEED)
    runner = scheme.make_runner(soc, game)
    clock = 0.0
    for event in columnar_session(game_name, seed, duration_s).events:
        if event.timestamp > clock:
            soc.advance_time(event.timestamp - clock)
            clock = event.timestamp
        runner.deliver(event)
    if duration_s > clock:
        soc.advance_time(duration_s - clock)
    return _package_run(scheme, game_name, seed, duration_s, soc, runner)


def _package_run(
    scheme: Scheme,
    game_name: str,
    seed: int,
    duration_s: float,
    soc: Soc,
    runner,
) -> SchemeRun:
    return SchemeRun(
        scheme_name=scheme.name,
        game_name=game_name,
        seed=seed,
        duration_s=duration_s,
        report=soc.report(),
        soc=soc,
        coverage=runner.coverage,
        hit_rate=runner.hit_rate,
    )
