"""Optimization schemes evaluated in the paper's Sec. VII.

* ``baseline`` — process every event fully.
* ``max_cpu`` — function-level reuse of pure CPU kernels ([3, 14, 42]):
  can skip a repeated ``CPUFunc_i``, never an IP call.
* ``max_ip`` — IP-side optimization ([43]): sleeps idle IP blocks and
  skips exact-repeat accelerator invocations, never CPU work.
* ``snip`` — the full SNIP runtime with its lookup table.
* ``no_overheads`` — SNIP with free lookups (the headroom line).

Every scheme runs the same generated session on a fresh SoC; results
carry the energy ledger plus each scheme's short-circuit coverage.
"""

from repro.schemes.base import Scheme, SchemeRun, run_scheme_session
from repro.schemes.baseline import BaselineScheme
from repro.schemes.max_cpu import MaxCpuScheme
from repro.schemes.max_ip import MaxIpScheme
from repro.schemes.no_overheads import NoOverheadsScheme
from repro.schemes.snip_scheme import SnipScheme

__all__ = [
    "BaselineScheme",
    "MaxCpuScheme",
    "MaxIpScheme",
    "NoOverheadsScheme",
    "Scheme",
    "SchemeRun",
    "SnipScheme",
    "run_scheme_session",
]
