"""Max CPU: function-level reuse of pure CPU kernels [3, 14, 42].

The strongest possible CPU-side memoizer: every named CPU sub-function
whose ``(name, key)`` was seen before is skipped for free (we even waive
the table-capacity limits such schemes really have). What it *cannot*
do, by construction, is skip an accelerator invocation or the handler's
unstructured glue cycles — the paper's Table I scoping argument, and the
reason its energy savings stay in single digits on IP-heavy games.
"""

from __future__ import annotations

from typing import Set, Tuple

from repro.android.binder import Binder
from repro.android.dispatch import charge_upkeep
from repro.android.events import Event
from repro.android.sensor_hub import SensorHub
from repro.android.sensor_manager import SensorManager
from repro.games.base import Game
from repro.schemes.base import Scheme
from repro.soc.energy import TAG_LOOKUP
from repro.soc.soc import Soc

#: CPU cost of probing the reuse table before one sub-function call.
FUNC_LOOKUP_CYCLES = 4_000


class _MaxCpuRunner:
    """Delivers events, skipping repeated pure CPU sub-functions."""

    def __init__(self, soc: Soc, game: Game) -> None:
        self.soc = soc
        self.game = game
        self.hub = SensorHub(soc)
        self.manager = SensorManager(soc)
        self.binder = Binder(soc)
        self._seen: Set[Tuple] = set()
        self._avoided_cycles = 0.0
        self._executed_cycles = 0.0
        self._events = 0
        self._events_with_reuse = 0

    def deliver(self, event: Event) -> None:
        from repro.android.dispatch import charge_delivery

        charge_delivery(self.soc, self.hub, self.manager, self.binder, event)
        self._executed_cycles += charge_upkeep(self.soc, self.game, event)
        trace = self.game.process(event)
        self._events += 1

        big_cycles = trace.cpu_big_cycles
        little_cycles = trace.cpu_little_cycles
        reused_here = False
        for call in trace.cpu_funcs:
            if not call.reusable:
                # Inputs live in memory structures: register-granularity
                # reuse hardware cannot identify them apriori (Fig. 5b).
                if call.big:
                    big_cycles += call.cycles
                else:
                    little_cycles += call.cycles
                continue
            self.soc.cpu.execute(FUNC_LOOKUP_CYCLES, big=True, tag=TAG_LOOKUP)
            slot = (call.name, call.key)
            if slot in self._seen:
                self._avoided_cycles += call.cycles
                reused_here = True
            else:
                self._seen.add(slot)
                if call.big:
                    big_cycles += call.cycles
                else:
                    little_cycles += call.cycles
        if reused_here:
            self._events_with_reuse += 1
        if big_cycles:
            self.soc.cpu.execute(big_cycles, big=True)
        if little_cycles:
            self.soc.cpu.execute(little_cycles, big=False)
        self._executed_cycles += big_cycles + little_cycles
        if trace.memory_bytes:
            self.soc.memory.transfer(trace.memory_bytes)
        for call in trace.ip_calls:  # IP calls are out of reach
            self.soc.ip(call.ip_name).invoke(
                call.work_units, bytes_in=call.bytes_in, bytes_out=call.bytes_out
            )

    @property
    def coverage(self) -> float:
        """Cycle-weighted share of execution the reuse table skipped."""
        total = self._avoided_cycles + self._executed_cycles
        return self._avoided_cycles / total if total else 0.0

    @property
    def hit_rate(self) -> float:
        """Fraction of events where at least one kernel was reused."""
        return self._events_with_reuse / self._events if self._events else 0.0


class MaxCpuScheme(Scheme):
    """Upper bound on CPU-only memoization (Table I's CPUFunc column)."""

    name = "max_cpu"

    def make_runner(self, soc: Soc, game: Game) -> _MaxCpuRunner:
        return _MaxCpuRunner(soc, game)
