"""Exception hierarchy for the SNIP reproduction.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch library failures without masking programming errors
(``TypeError``, ``KeyError`` from their own code, etc.).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """A configuration object is internally inconsistent or out of range."""


class SimulationError(ReproError):
    """The SoC / session simulation reached an invalid state."""


class PowerStateError(SimulationError):
    """An illegal power-state transition was requested on a component."""


class BatteryDepletedError(SimulationError):
    """Work was charged to a battery that has already reached 0% charge."""


class EventError(ReproError):
    """An event object is malformed or routed to the wrong handler."""


class UnknownEventTypeError(EventError):
    """An event type has no registered handler or schema."""


class GameError(ReproError):
    """A game workload violated its own rules or received bad input."""


class UnknownGameError(GameError):
    """A game name is not present in the workload registry."""


class StateError(GameError):
    """A game-state store access referenced a missing or mistyped field."""


class TraceError(ReproError):
    """A recorded event trace is malformed or cannot be replayed."""


class ReplayDivergenceError(TraceError):
    """Deterministic replay produced different outputs than the recording.

    The SNIP cloud profiler relies on the AOSP-emulator replay being
    bit-identical to the on-device execution; divergence means the
    profile would be built from wrong input/output data.
    """


class MemoizationError(ReproError):
    """A memoization table was built or queried inconsistently."""


class TableCapacityError(MemoizationError):
    """A lookup table exceeded its configured capacity budget."""


class DatasetError(ReproError):
    """An ML dataset is empty, ragged, or has mismatched labels."""


class ModelNotFittedError(ReproError):
    """Predict/importance was called on an unfitted model."""


class SelectionError(ReproError):
    """Necessary-input selection could not satisfy the error budget."""


class ProfilerError(ReproError):
    """The cloud profiling pipeline failed a stage."""


class SchemeError(ReproError):
    """An optimization scheme was applied to an incompatible session."""


class LintError(ReproError):
    """The static-analysis pass was misconfigured or hit unreadable input."""


class BaselineError(LintError):
    """A lint baseline file is missing, corrupt, or the wrong version."""


class CacheError(ProfilerError):
    """The on-disk package cache is misconfigured or unusable."""


class RegistryError(ReproError):
    """The SnipPackage registry is missing, corrupt, or misused."""


class PromotionError(RegistryError):
    """A champion/challenger promotion or rollback request is invalid."""


class FleetError(ReproError):
    """The fleet-simulation engine failed to plan or execute a run."""


class WorkerCrashError(FleetError):
    """A fleet worker (process or in-line) died and exhausted its retries."""


class CheckpointError(FleetError):
    """A fleet checkpoint directory is missing, corrupt, or mismatched."""


class ServiceError(ReproError):
    """The continuous-serving daemon hit an invalid state or run dir."""
