"""Shared accounting helpers for memoization tables."""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.games.base import FieldWrite, OutputCategory, ProcessingTrace


def weighted_coverage(
    hit_cycles: float, total_cycles: float
) -> float:
    """Execution coverage: cycle-weighted hit fraction (Fig. 6 x-axis)."""
    if total_cycles <= 0:
        return 0.0
    return hit_cycles / total_cycles


def trace_weight(trace: ProcessingTrace) -> int:
    """The dynamic-instruction weight of one event's processing."""
    return trace.total_cycles


def writes_differ(
    predicted: Sequence[FieldWrite], actual: Sequence[FieldWrite]
) -> bool:
    """Whether two output sets disagree on any field value."""
    predicted_map = {write.name: write.value for write in predicted}
    actual_map = {write.name: write.value for write in actual}
    return predicted_map != actual_map


def classify_erroneous_execution(
    predicted: Sequence[FieldWrite], actual: Sequence[FieldWrite]
) -> Optional[OutputCategory]:
    """Severity class of a wrong short-circuit, or ``None`` if correct.

    Paper Sec. IV-B: a wrong ``Out.Temp`` is a transient glitch the user
    barely sees; a wrong ``Out.History`` or ``Out.Extern`` corrupts
    future executions. An erroneous execution is classified by the most
    severe category among its mismatched fields
    (Extern > History > Temp).
    """
    predicted_map = {write.name: write.value for write in predicted}
    actual_map = {write.name: write.value for write in actual}
    mismatched_names = set()
    for name in sorted(set(predicted_map) | set(actual_map)):
        if predicted_map.get(name) != actual_map.get(name):
            mismatched_names.add(name)
    if not mismatched_names:
        return None
    categories = set()
    by_name = {write.name: write.category for write in list(actual) + list(predicted)}
    # Sorted so the fold visits fields in a hash-seed-independent
    # order (membership in `categories` is order-sensitive only in
    # iteration, but the determinism lint bans unsorted set walks
    # wholesale — cheap here, and the report stays byte-stable).
    for name in sorted(mismatched_names):
        categories.add(by_name[name])
    for severe in (OutputCategory.EXTERN, OutputCategory.HISTORY, OutputCategory.TEMP):
        if severe in categories:
            return severe
    return OutputCategory.TEMP  # pragma: no cover - unreachable


def total_output_bytes(writes: Iterable[FieldWrite]) -> int:
    """Stored size of one output record."""
    return sum(write.nbytes for write in writes)

