"""Naive lookup table: key on the union of ALL input locations.

Paper Sec. III. Every record stores the value at every input location
(event fields, every game-state location, every external asset) plus the
outputs. It is always *correct* — two executions with identical full
input records provably produce identical outputs — but the record width
is the whole input universe and nearly every event is unique somewhere,
so the table balloons into gigabytes for single-digit coverage (Fig. 6).

The table is built *online* in trace order, the way a device would
actually populate it: each miss inserts, each hit adds covered cycles.
The (size, coverage) trajectory is Fig. 6's curve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.android.emulator import ProfileRecord
from repro.android.events import EventType
from repro.core.fields import (
    FieldInfo,
    input_universe,
    record_inputs,
    records_by_event_type,
    universe_bytes,
)
from repro.memo.stats import total_output_bytes


@dataclass(frozen=True)
class CoveragePoint:
    """One point of the Fig. 6 curve."""

    events_seen: int
    table_bytes_input_only: int
    table_bytes_with_outputs: int
    coverage: float  # cycle-weighted fraction of execution covered


class NaiveLookupTable:
    """Union-of-locations memoization table over one profile."""

    def __init__(
        self, records: Sequence[ProfileRecord], user_events_only: bool = True
    ) -> None:
        """Build the table online over ``records``.

        ``user_events_only`` restricts the study to user-originated
        events, the paper's Sec. III scope (vsync ticks are engine
        callbacks, not captured user events).
        """
        if user_events_only:
            records = [
                record for record in records
                if record.event_type is not EventType.FRAME_TICK
            ]
        if not records:
            raise ValueError("cannot build a table from an empty profile")
        self._universes: Dict[EventType, List[FieldInfo]] = {}
        grouped = records_by_event_type(records)
        for event_type, group in grouped.items():
            self._universes[event_type] = input_universe(event_type, group)
        self._entries: Dict[Tuple, Tuple] = {}
        self._input_bytes = 0
        self._output_bytes = 0
        self._hit_cycles = 0.0
        self._total_cycles = 0.0
        self._hits = 0
        self._misses = 0
        self._curve: List[CoveragePoint] = []
        self._build(records)

    # -- accounting -------------------------------------------------------

    @property
    def entry_count(self) -> int:
        """Number of stored records."""
        return len(self._entries)

    @property
    def input_bytes(self) -> int:
        """Stored bytes of input keys only (Fig. 6 'Input Only')."""
        return self._input_bytes

    @property
    def total_bytes(self) -> int:
        """Stored bytes including outputs (Fig. 6 'Input + Output')."""
        return self._input_bytes + self._output_bytes

    @property
    def coverage(self) -> float:
        """Final cycle-weighted coverage achieved by the full table."""
        if self._total_cycles <= 0:
            return 0.0
        return self._hit_cycles / self._total_cycles

    @property
    def hits(self) -> int:
        """Number of events whose full input record repeated."""
        return self._hits

    @property
    def misses(self) -> int:
        """Number of events that inserted a new record."""
        return self._misses

    @property
    def curve(self) -> List[CoveragePoint]:
        """The online (table size, coverage) trajectory."""
        return list(self._curve)

    def universe(self, event_type: EventType) -> List[FieldInfo]:
        """Input universe used for one event type."""
        return list(self._universes[event_type])

    def record_width_bytes(self, event_type: EventType) -> int:
        """Input-record width for one event type."""
        return universe_bytes(self._universes[event_type])

    # -- construction -------------------------------------------------------

    def _build(self, records: Sequence[ProfileRecord]) -> None:
        sample_every = max(1, len(records) // 400)
        for position, record in enumerate(records):
            universe = self._universes[record.event_type]
            inputs = record_inputs(record)
            key = (record.event_type,) + tuple(
                inputs.get(info.name) for info in universe
            )
            weight = record.trace.total_cycles
            self._total_cycles += weight
            if key in self._entries:
                self._hits += 1
                self._hit_cycles += weight
            else:
                self._misses += 1
                self._entries[key] = record.trace.output_signature()
                self._input_bytes += universe_bytes(universe)
                self._output_bytes += total_output_bytes(record.trace.writes)
            if position % sample_every == 0 or position == len(records) - 1:
                self._curve.append(
                    CoveragePoint(
                        events_seen=position + 1,
                        table_bytes_input_only=self._input_bytes,
                        table_bytes_with_outputs=self._input_bytes + self._output_bytes,
                        coverage=(
                            self._hit_cycles / self._total_cycles
                            if self._total_cycles
                            else 0.0
                        ),
                    )
                )

    def bytes_needed_for_coverage(self, coverage: float, with_outputs: bool = True) -> int:
        """Smallest observed table size reaching ``coverage`` (Fig. 6).

        Returns the size at the first curve point whose coverage meets
        the target; raises ``ValueError`` if the profile never got there.
        """
        for point in self._curve:
            if point.coverage >= coverage:
                return (
                    point.table_bytes_with_outputs
                    if with_outputs
                    else point.table_bytes_input_only
                )
        raise ValueError(
            f"profile never reached {coverage:.1%} coverage "
            f"(max {self.coverage:.1%})"
        )
