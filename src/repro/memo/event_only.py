"""In.Event-only lookup table (paper Sec. IV-B, Fig. 8).

Keys records on the event object's fields alone — small, fixed-size,
statically locatable — and predicts the majority output seen for each
key. The same gesture in different game contexts maps to one key, so a
key can accumulate *multiple* distinct outputs: those instances are
ambiguous, and majority prediction gets some of them wrong. Fig. 8
quantifies the size win, the ambiguity, and the error breakdown by
output category that disqualifies this scheme.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.android.emulator import ProfileRecord
from repro.android.events import EventType, schema_for
from repro.games.base import FieldWrite, OutputCategory
from repro.memo.stats import classify_erroneous_execution, total_output_bytes


@dataclass(frozen=True)
class EventOnlyStats:
    """Fig. 8 metrics for one profile."""

    entry_count: int
    table_bytes: int
    coverage: float            # cycle-weighted fraction of repeats (hits)
    ambiguous_fraction: float  # cycle-weighted fraction on multi-output keys
    erroneous_fraction: float  # cycle-weighted fraction mispredicted
    error_breakdown: Mapping[OutputCategory, float]  # sums to 1 over errors


class EventOnlyTable:
    """Majority-output memoization keyed on In.Event fields only."""

    def __init__(self, records: Sequence[ProfileRecord]) -> None:
        if not records:
            raise ValueError("cannot build a table from an empty profile")
        self._outputs_by_key: Dict[Tuple, Counter] = defaultdict(Counter)
        self._writes_by_signature: Dict[Tuple, Tuple[FieldWrite, ...]] = {}
        self._records = list(records)
        for record in self._records:
            key = self._key(record)
            signature = record.trace.output_signature()
            self._outputs_by_key[key][signature] += record.trace.total_cycles
            self._writes_by_signature.setdefault(signature, tuple(record.trace.writes))

    @staticmethod
    def _key(record: ProfileRecord) -> Tuple:
        return (record.event_type,) + tuple(value for _, value in record.event_values)

    # -- size -------------------------------------------------------------

    @property
    def entry_count(self) -> int:
        """Number of distinct In.Event keys stored."""
        return len(self._outputs_by_key)

    @property
    def table_bytes(self) -> int:
        """Stored size: key bytes plus the majority output per key."""
        total = 0
        for key, outputs in self._outputs_by_key.items():
            event_type: EventType = key[0]
            total += schema_for(event_type).nbytes
            majority_signature = outputs.most_common(1)[0][0]
            total += total_output_bytes(self._writes_by_signature[majority_signature])
        return total

    # -- prediction ---------------------------------------------------------

    def predict(self, record: ProfileRecord) -> Tuple[FieldWrite, ...]:
        """Majority output writes for this record's event key."""
        outputs = self._outputs_by_key[self._key(record)]
        majority_signature = outputs.most_common(1)[0][0]
        return self._writes_by_signature[majority_signature]

    def stats(self, user_events_only: bool = True) -> EventOnlyStats:
        """Evaluate the scheme over its own profile (paper Fig. 8).

        Hits are counted on *repeat* occurrences (first sight inserts);
        ambiguity and errors are weighted by trace cycles like coverage.
        ``user_events_only`` evaluates over user-originated events (the
        paper's Sec. IV studies user event objects; vsync callbacks are
        not user events), while the table itself still stores all types.
        """
        seen: Dict[Tuple, int] = {}
        total_cycles = 0.0
        hit_cycles = 0.0
        ambiguous_cycles = 0.0
        error_cycles = 0.0
        error_by_category: Dict[OutputCategory, float] = {
            category: 0.0 for category in OutputCategory
        }
        for record in self._records:
            if user_events_only and record.event_type is EventType.FRAME_TICK:
                continue
            key = self._key(record)
            weight = record.trace.total_cycles
            total_cycles += weight
            if key in seen:
                hit_cycles += weight
                outputs = self._outputs_by_key[key]
                if len(outputs) > 1:
                    ambiguous_cycles += weight
                predicted = self.predict(record)
                severity = classify_erroneous_execution(
                    predicted, record.trace.writes
                )
                if severity is not None:
                    error_cycles += weight
                    error_by_category[severity] += weight
            else:
                seen[key] = 1
        breakdown: Dict[OutputCategory, float] = {}
        for category, cycles in error_by_category.items():
            breakdown[category] = cycles / error_cycles if error_cycles else 0.0
        return EventOnlyStats(
            entry_count=self.entry_count,
            table_bytes=self.table_bytes,
            coverage=hit_cycles / total_cycles if total_cycles else 0.0,
            ambiguous_fraction=ambiguous_cycles / total_cycles if total_cycles else 0.0,
            erroneous_fraction=error_cycles / total_cycles if total_cycles else 0.0,
            error_breakdown=breakdown,
        )

    def multi_output_keys(self) -> List[Tuple]:
        """Keys that observed more than one distinct output."""
        return [key for key, outputs in self._outputs_by_key.items() if len(outputs) > 1]
