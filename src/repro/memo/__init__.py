"""Memoization substrates: the pre-SNIP lookup-table designs.

Two strawmen from the paper, kept as first-class implementations because
they *are* the evaluation's baselines and motivation:

* :mod:`repro.memo.naive` — key on the union of all input locations
  (Sec. III / Fig. 6): always correct, impossibly large.
* :mod:`repro.memo.event_only` — key on In.Event fields only
  (Sec. IV-B / Fig. 8): small, but ambiguous and therefore wrong.
"""

from repro.memo.event_only import EventOnlyStats, EventOnlyTable
from repro.memo.naive import CoveragePoint, NaiveLookupTable
from repro.memo.stats import classify_erroneous_execution, weighted_coverage

__all__ = [
    "CoveragePoint",
    "EventOnlyStats",
    "EventOnlyTable",
    "NaiveLookupTable",
    "classify_erroneous_execution",
    "weighted_coverage",
]
