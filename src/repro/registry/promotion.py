"""Gated champion/challenger promotion.

A challenger is activated only when it clears every configured floor
*and* beats the incumbent champion on a ranked score — the registry's
answer to the stale-filter failure mode: a package trained on drifted
behaviour must prove itself on recorded metrics before it replaces the
one already deployed. Everything here is a pure function of the two
metric records and the policy, so the same inputs always yield the
same decision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import PromotionError
from repro.registry.records import PackageMetrics, PromotionDecision

#: Bytes per mebibyte, for the size term of the ranked score.
_MIB = 1024 * 1024


@dataclass(frozen=True)
class PromotionPolicy:
    """Floors a challenger must clear, and the score that ranks it.

    Floors are absolute gates — fail one and the challenger is rejected
    no matter how it scores. The score is a weighted sum of the gated
    metrics minus a table-size penalty; a challenger must *strictly*
    outrank the incumbent (ties keep the champion, so republishing an
    identical package can never churn the active version).
    """

    min_hit_rate: float = 0.0
    min_selection_accuracy: float = 0.98
    min_energy_saved_fraction: float = 0.0
    max_table_bytes: int = 0          # 0 disables the size ceiling
    #: Ranked-score weights. Accuracy dominates by default: shipping a
    #: table that mispredicts is worse than shipping a smaller one.
    accuracy_weight: float = 4.0
    energy_weight: float = 2.0
    hit_rate_weight: float = 1.0
    size_penalty_per_mib: float = 0.001

    def __post_init__(self) -> None:
        if not 0.0 <= self.min_hit_rate <= 1.0:
            raise PromotionError(
                f"min_hit_rate must be within [0, 1], got {self.min_hit_rate}"
            )
        if not 0.0 <= self.min_selection_accuracy <= 1.0:
            raise PromotionError(
                f"min_selection_accuracy must be within [0, 1], "
                f"got {self.min_selection_accuracy}"
            )
        if self.max_table_bytes < 0:
            raise PromotionError(
                f"max_table_bytes must be non-negative, got {self.max_table_bytes}"
            )

    # -- gates -------------------------------------------------------------

    def floors_unmet(self, metrics: PackageMetrics) -> List[str]:
        """Which floors the metrics fail (empty means all clear).

        The energy floor is skipped when the publisher did not measure
        energy — absence of evidence is handled by keeping the floor's
        *other* gates strict, not by inventing a number.
        """
        unmet = []
        if metrics.hit_rate < self.min_hit_rate:
            unmet.append(
                f"hit_rate {metrics.hit_rate:.4f} < floor {self.min_hit_rate:.4f}"
            )
        if metrics.selection_accuracy < self.min_selection_accuracy:
            unmet.append(
                f"selection_accuracy {metrics.selection_accuracy:.4f} "
                f"< floor {self.min_selection_accuracy:.4f}"
            )
        if (
            metrics.energy_saved_fraction is not None
            and metrics.energy_saved_fraction < self.min_energy_saved_fraction
        ):
            unmet.append(
                f"energy_saved_fraction {metrics.energy_saved_fraction:.4f} "
                f"< floor {self.min_energy_saved_fraction:.4f}"
            )
        if 0 < self.max_table_bytes < metrics.table_bytes:
            unmet.append(
                f"table_bytes {metrics.table_bytes} "
                f"> ceiling {self.max_table_bytes}"
            )
        return unmet

    def score(self, metrics: PackageMetrics) -> float:
        """The ranked score a challenger must strictly beat."""
        energy = metrics.energy_saved_fraction or 0.0
        return (
            self.accuracy_weight * metrics.selection_accuracy
            + self.energy_weight * energy
            + self.hit_rate_weight * metrics.hit_rate
            - self.size_penalty_per_mib * (metrics.table_bytes / _MIB)
        )


def judge(
    challenger_version: int,
    challenger: PackageMetrics,
    champion_version: Optional[int],
    champion: Optional[PackageMetrics],
    policy: PromotionPolicy,
) -> PromotionDecision:
    """Decide whether a challenger displaces the incumbent.

    With no incumbent, clearing the floors is sufficient; with one, the
    challenger must also strictly outrank it.
    """
    reasons = policy.floors_unmet(challenger)
    challenger_score = policy.score(challenger)
    champion_score = policy.score(champion) if champion is not None else None
    if not reasons and champion_score is not None:
        if challenger_score <= champion_score:
            reasons.append(
                f"score {challenger_score:.6f} does not beat champion "
                f"{champion_score:.6f}"
            )
    return PromotionDecision(
        version=challenger_version,
        promoted=not reasons,
        champion_version=champion_version,
        challenger_score=challenger_score,
        champion_score=champion_score,
        reasons=tuple(reasons),
    )
