"""Publishing profiler output into the registry.

:func:`publish_candidate` is the one-call path from "profile this game"
to "candidate on the ledger": it runs the cloud profiler *through the
registry's package cache* (so the payload the entry references is the
very cache object the profiler wrote — no duplication), keys the entry
by the profiler's input-derived digest, measures the gated metrics on a
held-out session, and records the candidate. Re-publishing the same
inputs is a no-op, which keeps replayed pipelines byte-identical.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.core.config import SnipConfig
from repro.core.overrides import DeveloperOverrides
from repro.core.package_cache import package_digest
from repro.core.profiler import CloudProfiler, SnipPackage
from repro.registry.metrics import (
    DEFAULT_EVAL_DURATION_S,
    DEFAULT_EVAL_SEED,
    measure_package,
)
from repro.registry.records import RegistryEntry
from repro.registry.store import PackageRegistry


def publish_candidate(
    registry: PackageRegistry,
    game_name: str,
    seeds: Sequence[int],
    duration_s: float,
    config: Optional[SnipConfig] = None,
    overrides: Optional[DeveloperOverrides] = None,
    eval_seed: int = DEFAULT_EVAL_SEED,
    eval_duration_s: float = DEFAULT_EVAL_DURATION_S,
    measure_energy: bool = True,
) -> Tuple[RegistryEntry, SnipPackage, bool]:
    """Profile, measure, and register one candidate package.

    Returns ``(entry, package, created)`` — ``created`` is False when
    the slot already held a candidate built from identical inputs.
    """
    config = config or SnipConfig()
    overrides = overrides or DeveloperOverrides()
    profiler = CloudProfiler(config, overrides=overrides, cache=registry.cache)
    package = profiler.build_package_from_sessions(
        game_name, seeds=list(seeds), duration_s=duration_s
    )
    digest = package_digest(game_name, config, seeds, duration_s, overrides)
    metrics = measure_package(
        package,
        config,
        eval_seed=eval_seed,
        eval_duration_s=eval_duration_s,
        measure_energy=measure_energy,
    )
    entry, created = registry.publish(
        game_name,
        config,
        package,
        metrics,
        source="profiler",
        source_digest=digest,
    )
    return entry, package, created
