"""The on-disk SnipPackage registry.

Layout of the registry root::

    <root>/
      <game>/
        <config_fingerprint>/
          registry.json      # one RegistryState document

Registry entries never embed package payloads — they reference digests
in the content-addressed :class:`~repro.core.package_cache.PackageCache`,
so a package published here and cached by the profiler exists on disk
exactly once. State files are written atomically with sorted keys,
fixed indentation, and no wall-clock fields: the bytes are a pure
function of the publish/promotion history, which is what makes them
identical across ``--jobs`` settings and re-runs.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional, Tuple, Union

from repro.core.config import SnipConfig
from repro.core.package_cache import PackageCache
from repro.core.serialization import package_to_bytes
from repro.errors import PromotionError, RegistryError
from repro.registry.promotion import PromotionPolicy, judge
from repro.registry.records import (
    STATUS_CANDIDATE,
    STATUS_CHAMPION,
    STATUS_REJECTED,
    STATUS_RETIRED,
    STATUS_ROLLED_BACK,
    PackageMetrics,
    PromotionDecision,
    RegistryEntry,
    RegistryState,
    config_fingerprint,
)

STATE_NAME = "registry.json"

#: Environment variable overriding the registry directory.
REGISTRY_DIR_ENV = "REPRO_SNIP_REGISTRY_DIR"


def default_registry_root() -> Path:
    """``$REPRO_SNIP_REGISTRY_DIR`` or ``~/.cache/repro-snip/registry``."""
    # Like the package cache, *where* the registry lives never affects
    # what gets decided — reading the environment is configuration.
    override = os.environ.get(REGISTRY_DIR_ENV)  # lint: ignore[det-env-read]
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-snip" / "registry"


def content_digest(package) -> str:
    """Content address for a package with no input-derived cache key.

    The profiler's cache keys packages by their *inputs*; publishers
    like the fig12 learning loop build packages from bespoke truncated
    traces, so the registry falls back to hashing the serialized
    package itself.
    """
    return hashlib.blake2b(
        package_to_bytes(package), digest_size=16
    ).hexdigest()


@dataclass(frozen=True)
class GcStats:
    """What ``repro-snip registry gc`` reclaimed."""

    entries_removed: int
    payloads_removed: int
    bytes_reclaimed: int


class PackageRegistry:
    """Versioned ledger of SnipPackages per ``(game, config)``."""

    def __init__(
        self,
        root: Optional[Union[str, os.PathLike]] = None,
        cache: Optional[PackageCache] = None,
    ) -> None:
        """``cache`` is where entry digests resolve to package payloads.

        Defaults to a ``packages`` store *inside* the registry root, so
        a relocated registry stays self-contained; pass the profiler's
        cache to share payloads with ordinary profiling runs.
        """
        self.root = Path(root) if root is not None else default_registry_root()
        self.cache = cache if cache is not None else PackageCache(
            self.root / "packages"
        )

    # -- state files -------------------------------------------------------

    def state_path(self, game_name: str, config: SnipConfig) -> Path:
        """Where one slot's state document lives."""
        return self.root / game_name / config_fingerprint(config) / STATE_NAME

    def load_state(self, game_name: str, config: SnipConfig) -> RegistryState:
        """The slot's state, or an empty one when never written."""
        path = self.state_path(game_name, config)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return RegistryState(
                game_name=game_name,
                config_fingerprint=config_fingerprint(config),
            )
        except (OSError, ValueError) as exc:
            raise RegistryError(f"unreadable registry state {path}: {exc}") from exc
        state = RegistryState.from_dict(payload)
        if state.game_name != game_name:
            raise RegistryError(
                f"registry state {path} belongs to {state.game_name!r}, "
                f"not {game_name!r}"
            )
        return state

    def _save_state(self, state: RegistryState, config: SnipConfig) -> Path:
        path = self.state_path(state.game_name, config)
        document = json.dumps(state.to_dict(), indent=2, sort_keys=True) + "\n"
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, staged = tempfile.mkstemp(
                prefix=f".{STATE_NAME}.", suffix=".tmp", dir=path.parent
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    handle.write(document)
                os.replace(staged, path)
            except BaseException:
                try:
                    os.unlink(staged)
                except OSError:
                    pass
                raise
        except OSError as exc:
            raise RegistryError(f"cannot write registry state {path}: {exc}") from exc
        return path

    def slots(self) -> Iterator[Tuple[str, str, RegistryState]]:
        """Every persisted ``(game, fingerprint, state)``, sorted."""
        if not self.root.is_dir():
            return
        for path in sorted(self.root.glob(f"*/*/{STATE_NAME}")):
            fingerprint = path.parent.name
            game_name = path.parent.parent.name
            try:
                state = RegistryState.from_dict(
                    json.loads(path.read_text(encoding="utf-8"))
                )
            except (OSError, ValueError) as exc:
                raise RegistryError(
                    f"unreadable registry state {path}: {exc}"
                ) from exc
            yield game_name, fingerprint, state

    # -- publishing --------------------------------------------------------

    def publish(
        self,
        game_name: str,
        config: SnipConfig,
        package,
        metrics: PackageMetrics,
        source: str = "profiler",
        source_digest: Optional[str] = None,
    ) -> Tuple[RegistryEntry, bool]:
        """Record a candidate package; returns ``(entry, created)``.

        The payload is stored into the bound cache under its digest
        (``source_digest`` when the profiler already keyed it, a
        content digest otherwise). Publishing a digest the slot already
        holds is a no-op returning the existing entry — that is what
        keeps replayed pipelines (and re-runs of fig12 against the same
        registry) byte-identical.
        """
        digest = source_digest or content_digest(package)
        state = self.load_state(game_name, config)
        existing = state.by_digest(digest)
        if existing is not None:
            return existing, False
        if self.cache.load(digest) is None:
            self.cache.store(digest, package)
        entry = RegistryEntry(
            version=state.next_version,
            digest=digest,
            game_name=game_name,
            status=STATUS_CANDIDATE,
            metrics=metrics,
            source=source,
        )
        state.entries[entry.version] = entry
        self._save_state(state, config)
        return entry, True

    def load_package(self, entry: RegistryEntry):
        """Resolve an entry's digest to its cached package."""
        package = self.cache.load(entry.digest)
        if package is None:
            raise RegistryError(
                f"package payload {entry.digest} for version {entry.version} "
                f"is missing from the cache at {self.cache.root}"
            )
        return package

    # -- promotion / rollback ----------------------------------------------

    def promote(
        self,
        game_name: str,
        config: SnipConfig,
        version: Optional[int] = None,
        policy: Optional[PromotionPolicy] = None,
    ) -> PromotionDecision:
        """Judge one candidate (default: the latest) against the champion.

        On promotion the incumbent is retired and the candidate becomes
        the champion; on rejection the candidate is marked rejected. The
        decision — either way — is recorded on the entry. Promoting the
        current champion is an idempotent no-op returning its recorded
        decision.
        """
        policy = policy or PromotionPolicy()
        state = self.load_state(game_name, config)
        if version is None:
            candidates = [
                entry_version
                for entry_version in sorted(state.entries)
                if state.entries[entry_version].status == STATUS_CANDIDATE
            ]
            if not candidates:
                raise PromotionError(
                    f"no pending candidates for {game_name!r}; "
                    f"publish a package first"
                )
            version = candidates[-1]
        entry = state.entry(version)
        if entry.status == STATUS_CHAMPION:
            if entry.decision is not None:
                return entry.decision
            raise PromotionError(
                f"version {version} is already the champion"
            )
        champion = state.champion()
        decision = judge(
            challenger_version=version,
            challenger=entry.metrics,
            champion_version=champion.version if champion else None,
            champion=champion.metrics if champion else None,
            policy=policy,
        )
        self._apply(state, entry, decision)
        self._save_state(state, config)
        return decision

    def apply_decision(
        self,
        game_name: str,
        config: SnipConfig,
        decision: PromotionDecision,
    ) -> RegistryEntry:
        """Apply an externally computed decision to the ledger.

        The staged-rollout driver compares cohorts with the fleet
        reducers and records its verdict through this, so rollout
        promotions leave exactly the same kind of audit trail as
        metric-gated ones.
        """
        state = self.load_state(game_name, config)
        entry = state.entry(decision.version)
        self._apply(state, entry, decision)
        self._save_state(state, config)
        return entry

    @staticmethod
    def _apply(
        state: RegistryState, entry: RegistryEntry, decision: PromotionDecision
    ) -> None:
        entry.decision = decision
        if decision.promoted:
            if state.champion_version == entry.version:
                return  # already the champion; just refresh the record
            champion = state.champion()
            if champion is not None:
                champion.status = STATUS_RETIRED
            entry.status = STATUS_CHAMPION
            state.champion_version = entry.version
            state.champion_history = state.champion_history + (entry.version,)
        elif entry.status != STATUS_CHAMPION:
            entry.status = STATUS_REJECTED

    def rollback(
        self,
        game_name: str,
        config: SnipConfig,
        version: Optional[int] = None,
    ) -> RegistryEntry:
        """Restore a prior champion; returns the reinstated entry.

        With no ``version``, the champion before the current one is
        reinstated; with one, that specific registered version becomes
        the champion. The displaced champion is marked rolled back and
        drops out of the history, so repeated rollbacks walk further
        into the past instead of oscillating.
        """
        state = self.load_state(game_name, config)
        current = state.champion()
        if current is None:
            raise PromotionError(
                f"no champion to roll back for {game_name!r}"
            )
        history = tuple(
            entry_version
            for entry_version in state.champion_history
            if entry_version != current.version
        )
        if version is None:
            if not history:
                raise PromotionError(
                    f"champion version {current.version} has no predecessor "
                    f"to roll back to"
                )
            version = history[-1]
        if version == current.version:
            raise PromotionError(
                f"version {version} is already the champion"
            )
        target = state.entry(version)
        history = tuple(
            entry_version for entry_version in history
            if entry_version != version
        ) + (version,)
        current.status = STATUS_ROLLED_BACK
        target.status = STATUS_CHAMPION
        state.champion_version = target.version
        state.champion_history = history
        self._save_state(state, config)
        return target

    # -- hygiene -----------------------------------------------------------

    def gc(self, game_name: str, config: SnipConfig) -> GcStats:
        """Drop dead entries and reclaim their cache payloads.

        Removable entries are rejected or rolled-back versions that are
        neither the champion nor part of the rollback history; their
        payloads are deleted from the cache unless another live entry
        still references the digest. Uses the cache's own size
        accounting, so reclaimed bytes match ``cache stats``.
        """
        state = self.load_state(game_name, config)
        keep_versions = set(state.champion_history)
        if state.champion_version is not None:
            keep_versions.add(state.champion_version)
        removable = [
            version
            for version in sorted(state.entries)
            if version not in keep_versions
            and state.entries[version].status
            in (STATUS_REJECTED, STATUS_ROLLED_BACK)
        ]
        if not removable:
            return GcStats(0, 0, 0)
        dead_digests = {state.entries[version].digest for version in removable}
        for version in removable:
            del state.entries[version]
        self._save_state(state, config)
        # A digest may be shared across entries and slots (identical
        # content republished); never reclaim a payload any surviving
        # entry anywhere in the registry still references.
        live_digests = set()
        for _game, _fingerprint, other in self.slots():
            live_digests.update(
                entry.digest for entry in other.entries.values()
            )
        payloads = 0
        reclaimed = 0
        for digest in sorted(dead_digests - live_digests):
            freed = self.cache.remove(digest)
            if freed is not None:
                payloads += 1
                reclaimed += freed
        return GcStats(
            entries_removed=len(removable),
            payloads_removed=payloads,
            bytes_reclaimed=reclaimed,
        )
