"""Registry record types and their canonical JSON forms.

The registry's whole value is its *ledger*: for every candidate package
it remembers the gated metrics (table hit rate, selection accuracy,
selected-field count, table size, energy saved vs the Max-CPU baseline)
and the promotion decision that was taken on them. Every record here
round-trips through plain JSON with sorted keys and no wall-clock
fields, so a registry state file is a pure function of the publish and
promotion history — byte-identical across ``--jobs`` settings and
re-runs, matching the fleet determinism contract.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.core.config import SnipConfig
from repro.errors import RegistryError

#: Bump on incompatible changes to the registry state-file layout.
REGISTRY_FORMAT_VERSION = 1

#: Entry lifecycle states.
STATUS_CANDIDATE = "candidate"      # published, not yet judged
STATUS_CHAMPION = "champion"        # the active package
STATUS_RETIRED = "retired"          # former champion, displaced by a winner
STATUS_REJECTED = "rejected"        # challenger that failed floors/ranking
STATUS_ROLLED_BACK = "rolled_back"  # champion displaced by a rollback

_STATUSES = (
    STATUS_CANDIDATE,
    STATUS_CHAMPION,
    STATUS_RETIRED,
    STATUS_REJECTED,
    STATUS_ROLLED_BACK,
)


def config_fingerprint(config: SnipConfig) -> str:
    """Stable digest identifying one pipeline configuration.

    Registry state is partitioned per ``(game, config)``: packages
    built under different configs are never comparable (different
    gates, different forests), so they never compete for the same
    champion slot.
    """
    payload = {
        "format_version": REGISTRY_FORMAT_VERSION,
        "config": asdict(config),
    }
    canonical = json.dumps(payload, sort_keys=True)
    return hashlib.blake2b(canonical.encode("utf-8"), digest_size=16).hexdigest()


@dataclass(frozen=True)
class PackageMetrics:
    """The gated metrics recorded for every candidate package.

    ``energy_saved_fraction`` is optional because not every publisher
    can afford an energy measurement (fig12's learning loop publishes
    from accuracy evaluation alone); a ``None`` simply skips the energy
    floor during promotion.
    """

    hit_rate: float
    selection_accuracy: float
    selected_fields: int
    table_entries: int
    table_bytes: int
    energy_saved_fraction: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON form."""
        return {
            "hit_rate": self.hit_rate,
            "selection_accuracy": self.selection_accuracy,
            "selected_fields": self.selected_fields,
            "table_entries": self.table_entries,
            "table_bytes": self.table_bytes,
            "energy_saved_fraction": self.energy_saved_fraction,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "PackageMetrics":
        """Inverse of :meth:`to_dict`."""
        try:
            return cls(
                hit_rate=float(payload["hit_rate"]),
                selection_accuracy=float(payload["selection_accuracy"]),
                selected_fields=int(payload["selected_fields"]),
                table_entries=int(payload["table_entries"]),
                table_bytes=int(payload["table_bytes"]),
                energy_saved_fraction=(
                    None
                    if payload.get("energy_saved_fraction") is None
                    else float(payload["energy_saved_fraction"])
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise RegistryError(f"malformed metrics record: {exc}") from exc


@dataclass(frozen=True)
class PromotionDecision:
    """Outcome of judging one challenger against the incumbent."""

    version: int                    # the judged challenger
    promoted: bool
    champion_version: Optional[int]  # incumbent at decision time
    challenger_score: float
    champion_score: Optional[float]
    reasons: Tuple[str, ...]        # why it was rejected (empty on promote)

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON form."""
        return {
            "version": self.version,
            "promoted": self.promoted,
            "champion_version": self.champion_version,
            "challenger_score": self.challenger_score,
            "champion_score": self.champion_score,
            "reasons": list(self.reasons),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "PromotionDecision":
        """Inverse of :meth:`to_dict`."""
        try:
            return cls(
                version=int(payload["version"]),
                promoted=bool(payload["promoted"]),
                champion_version=(
                    None
                    if payload.get("champion_version") is None
                    else int(payload["champion_version"])
                ),
                challenger_score=float(payload["challenger_score"]),
                champion_score=(
                    None
                    if payload.get("champion_score") is None
                    else float(payload["champion_score"])
                ),
                reasons=tuple(str(reason) for reason in payload["reasons"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise RegistryError(f"malformed decision record: {exc}") from exc


@dataclass
class RegistryEntry:
    """One versioned package in the ledger.

    The entry never embeds the package payload — ``digest`` points into
    the content-addressed :class:`~repro.core.package_cache.PackageCache`,
    so a package cached by the profiler and registered here exists on
    disk exactly once.
    """

    version: int
    digest: str
    game_name: str
    status: str
    metrics: PackageMetrics
    #: Where the candidate came from (``"profiler"``, ``"fig12"``,
    #: ``"fleet"`` ...) — provenance only, never part of any decision.
    source: str = "profiler"
    decision: Optional[PromotionDecision] = None

    def __post_init__(self) -> None:
        if self.status not in _STATUSES:
            raise RegistryError(f"unknown entry status {self.status!r}")

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON form."""
        return {
            "version": self.version,
            "digest": self.digest,
            "game_name": self.game_name,
            "status": self.status,
            "source": self.source,
            "metrics": self.metrics.to_dict(),
            "decision": self.decision.to_dict() if self.decision else None,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RegistryEntry":
        """Inverse of :meth:`to_dict`."""
        try:
            decision = payload.get("decision")
            return cls(
                version=int(payload["version"]),
                digest=str(payload["digest"]),
                game_name=str(payload["game_name"]),
                status=str(payload["status"]),
                source=str(payload.get("source", "profiler")),
                metrics=PackageMetrics.from_dict(payload["metrics"]),
                decision=(
                    PromotionDecision.from_dict(decision) if decision else None
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise RegistryError(f"malformed registry entry: {exc}") from exc


@dataclass
class RegistryState:
    """Everything one ``(game, config)`` slot persists.

    ``champion_history`` records every champion version in promotion
    order; rollback pops it. Entries are keyed by version and versions
    are dense (1, 2, 3, ...), so re-publishing the same content is a
    no-op and state bytes are reproducible.
    """

    game_name: str
    config_fingerprint: str
    entries: Dict[int, RegistryEntry] = field(default_factory=dict)
    champion_version: Optional[int] = None
    champion_history: Tuple[int, ...] = ()

    @property
    def next_version(self) -> int:
        """Version the next published candidate receives."""
        return max(self.entries, default=0) + 1

    def champion(self) -> Optional[RegistryEntry]:
        """The active entry, or ``None`` before any promotion."""
        if self.champion_version is None:
            return None
        return self.entries[self.champion_version]

    def entry(self, version: int) -> RegistryEntry:
        """The entry for one version (raises on unknown versions)."""
        try:
            return self.entries[version]
        except KeyError:
            raise RegistryError(
                f"no version {version} registered for {self.game_name!r}"
            ) from None

    def by_digest(self, digest: str) -> Optional[RegistryEntry]:
        """The entry carrying ``digest``, if any (versions are dense,
        so the lowest matching version is the canonical one)."""
        for version in sorted(self.entries):
            if self.entries[version].digest == digest:
                return self.entries[version]
        return None

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON form (entry list sorted by version)."""
        return {
            "format_version": REGISTRY_FORMAT_VERSION,
            "game_name": self.game_name,
            "config_fingerprint": self.config_fingerprint,
            "champion_version": self.champion_version,
            "champion_history": list(self.champion_history),
            "entries": [
                self.entries[version].to_dict()
                for version in sorted(self.entries)
            ],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RegistryState":
        """Inverse of :meth:`to_dict`."""
        version = payload.get("format_version")
        if version != REGISTRY_FORMAT_VERSION:
            raise RegistryError(
                f"unsupported registry format {version!r} "
                f"(this build supports {REGISTRY_FORMAT_VERSION})"
            )
        try:
            entries = {
                int(entry["version"]): RegistryEntry.from_dict(entry)
                for entry in payload["entries"]
            }
            return cls(
                game_name=str(payload["game_name"]),
                config_fingerprint=str(payload["config_fingerprint"]),
                entries=entries,
                champion_version=(
                    None
                    if payload.get("champion_version") is None
                    else int(payload["champion_version"])
                ),
                champion_history=tuple(
                    int(version) for version in payload["champion_history"]
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise RegistryError(f"malformed registry state: {exc}") from exc
