"""Versioned SnipPackage registry with champion/challenger promotion.

The registry is the control plane the paper's continuous-learning story
needs: profiler output becomes a *candidate*, a deterministic promotion
pass activates it only when it clears the configured floors *and*
outranks the incumbent champion, staged rollouts trial it on a fleet
fraction before fleet-wide activation, and any prior champion is one
rollback away. See ``docs/REGISTRY.md``.
"""

from repro.registry.metrics import (
    DEFAULT_EVAL_DURATION_S,
    DEFAULT_EVAL_SEED,
    measure_package,
    metrics_from_epoch,
)
from repro.registry.promotion import PromotionPolicy, judge
from repro.registry.publish import publish_candidate
from repro.registry.records import (
    STATUS_CANDIDATE,
    STATUS_CHAMPION,
    STATUS_REJECTED,
    STATUS_RETIRED,
    STATUS_ROLLED_BACK,
    PackageMetrics,
    PromotionDecision,
    RegistryEntry,
    RegistryState,
    config_fingerprint,
)
from repro.registry.rollout import (
    ACTION_PROMOTED,
    ACTION_ROLLED_BACK,
    RolloutResult,
    judge_cohorts,
    run_staged_rollout,
)
from repro.registry.store import (
    REGISTRY_DIR_ENV,
    GcStats,
    PackageRegistry,
    content_digest,
    default_registry_root,
)

__all__ = [
    "ACTION_PROMOTED",
    "ACTION_ROLLED_BACK",
    "DEFAULT_EVAL_DURATION_S",
    "DEFAULT_EVAL_SEED",
    "GcStats",
    "PackageMetrics",
    "PackageRegistry",
    "PromotionDecision",
    "PromotionPolicy",
    "REGISTRY_DIR_ENV",
    "RegistryEntry",
    "RegistryState",
    "RolloutResult",
    "STATUS_CANDIDATE",
    "STATUS_CHAMPION",
    "STATUS_REJECTED",
    "STATUS_RETIRED",
    "STATUS_ROLLED_BACK",
    "config_fingerprint",
    "content_digest",
    "default_registry_root",
    "judge",
    "judge_cohorts",
    "measure_package",
    "metrics_from_epoch",
    "publish_candidate",
    "run_staged_rollout",
]
