"""Measuring the gated metrics a candidate package is judged on.

:func:`measure_package` evaluates a package on a *held-out* session
(one the profiler never saw): table hit rate and selection accuracy
come from a faithful replay against ground truth, and energy saved is
one SNIP-runtime session against the Max-CPU baseline on fresh SoCs —
the same comparison the paper's Fig. 11 makes. Everything is seeded,
so the recorded metrics are a pure function of ``(package, config,
eval_seed, eval_duration_s)``.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import SnipConfig
from repro.core.learning import evaluate_table
from repro.core.runtime import SnipRuntime
from repro.games.registry import GAME_CONTENT_SEED, create_game
from repro.registry.records import PackageMetrics
from repro.soc.soc import snapdragon_821
from repro.users.sessions import run_baseline_session
from repro.users.tracegen import generate_trace

#: Held-out session defaults, disjoint from every profile seed the
#: drivers use (they profile on small positive seeds like 1..3).
DEFAULT_EVAL_SEED = 7919
DEFAULT_EVAL_DURATION_S = 20.0


def selected_field_count(selection) -> int:
    """Necessary-input fields across all event types of a selection."""
    return sum(
        len(fields) for fields in selection.by_event_type.values()
    )


def measure_energy_saved(
    package, config: SnipConfig, eval_seed: int, eval_duration_s: float
) -> float:
    """Fractional energy saved vs the Max-CPU baseline on one session."""
    soc = snapdragon_821()
    game = create_game(package.game_name, seed=GAME_CONTENT_SEED)
    runtime = SnipRuntime(soc, game, package.table.clone(), config)
    trace = generate_trace(package.game_name, eval_seed, eval_duration_s)
    clock = 0.0
    for recorded in trace:
        event = recorded.to_event()
        if event.timestamp > clock:
            soc.advance_time(event.timestamp - clock)
            clock = event.timestamp
        runtime.deliver(event)
    if eval_duration_s > clock:
        soc.advance_time(eval_duration_s - clock)
    baseline = run_baseline_session(
        package.game_name, seed=eval_seed, duration_s=eval_duration_s
    )
    baseline_joules = baseline.report.total_joules
    if baseline_joules <= 0:
        return 0.0
    return 1.0 - soc.meter.total_joules / baseline_joules


def measure_package(
    package,
    config: Optional[SnipConfig] = None,
    eval_seed: int = DEFAULT_EVAL_SEED,
    eval_duration_s: float = DEFAULT_EVAL_DURATION_S,
    measure_energy: bool = True,
) -> PackageMetrics:
    """Evaluate a package on a held-out session into gated metrics.

    ``measure_energy=False`` skips the two energy sessions (the costly
    half) and records ``energy_saved_fraction=None``; promotion then
    skips the energy floor for this candidate.
    """
    config = config or SnipConfig()
    trace = generate_trace(package.game_name, eval_seed, eval_duration_s)
    hit_fraction, error_fraction = evaluate_table(
        package.game_name, package.table, trace
    )
    energy_saved = (
        measure_energy_saved(package, config, eval_seed, eval_duration_s)
        if measure_energy
        else None
    )
    return PackageMetrics(
        hit_rate=hit_fraction,
        selection_accuracy=1.0 - error_fraction,
        selected_fields=selected_field_count(package.selection),
        table_entries=package.table.entry_count,
        table_bytes=package.table_bytes,
        energy_saved_fraction=energy_saved,
    )


def metrics_from_epoch(package, hit_fraction: float, error_fraction: float) -> PackageMetrics:
    """Metrics for a package already evaluated by the learning loop.

    Fig. 12's epochs measure hit and error fractions on the next
    (unseen) session as part of the experiment itself; publishing
    reuses those numbers instead of paying for a second evaluation.
    Energy is not measured there, so the energy floor is skipped.
    """
    return PackageMetrics(
        hit_rate=hit_fraction,
        selection_accuracy=1.0 - error_fraction,
        selected_fields=selected_field_count(package.selection),
        table_entries=package.table.entry_count,
        table_bytes=package.table_bytes,
        energy_saved_fraction=None,
    )
