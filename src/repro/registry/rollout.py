"""Staged fleet rollout of a registered challenger.

The registry's offline promotion pass judges candidates on profiler
metrics; this module is the online counterpart. It ships the current
champion to most of the fleet and a registered challenger to a
deterministic fraction of it (see
:func:`repro.fleet.spec.assign_cohort`), folds per-cohort metrics
through the existing fleet reducers, and then either auto-promotes the
challenger or rolls its cohort back to the champion package based on
the cohort comparison. Either verdict is recorded on the challenger's
registry entry, so rollouts leave the same audit trail as offline
promotions — and because cohort assignment, the fleet reduction, and
the decision rule are all deterministic, re-running the rollout yields
a byte-identical registry state.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from repro.core.config import SnipConfig
from repro.errors import PromotionError
from repro.fleet.engine import DEFAULT_MAX_LIVE_SHARDS, FleetEngine, FleetReport
from repro.fleet.executors import FleetExecutor
from repro.fleet.reducers import FleetTotals
from repro.fleet.spec import COHORT_CHALLENGER, COHORT_CHAMPION, FleetSpec
from repro.fleet.telemetry import TelemetryBus
from repro.registry.promotion import PromotionPolicy
from repro.registry.records import (
    STATUS_CANDIDATE,
    PromotionDecision,
    RegistryEntry,
)
from repro.registry.store import PackageRegistry

#: What the rollout concluded: the challenger took over the fleet, or
#: its cohort was rolled back to the champion package.
ACTION_PROMOTED = "promoted"
ACTION_ROLLED_BACK = "rolled_back"


@dataclass(frozen=True)
class RolloutResult:
    """One staged rollout's full outcome."""

    action: str
    decision: PromotionDecision
    report: FleetReport
    champion_version: int
    challenger_version: int

    @property
    def cohorts(self) -> Dict[str, FleetTotals]:
        """Per-cohort totals the verdict was computed from."""
        assert self.report.cohorts is not None
        return self.report.cohorts

    def to_text(self) -> str:
        """Render the verdict under the fleet report."""
        lines = [self.report.to_text()]
        lines.append(
            f"rollout verdict: challenger v{self.challenger_version} "
            f"{self.action.replace('_', ' ')} "
            f"(champion v{self.champion_version})"
        )
        for reason in self.decision.reasons:
            lines.append(f"  - {reason}")
        return "\n".join(lines)


def _cohort_score(totals: FleetTotals, policy: PromotionPolicy) -> float:
    """Rank a cohort by the policy's energy and hit-rate weights.

    Selection accuracy is a profiler-side metric (it needs ground-truth
    replays), so the online score only weighs what devices report.
    """
    return (
        policy.energy_weight * totals.savings
        + policy.hit_rate_weight * totals.hit_rate
    )


def judge_cohorts(
    challenger_version: int,
    champion_version: int,
    cohorts: Dict[str, FleetTotals],
    policy: PromotionPolicy,
) -> PromotionDecision:
    """Decide a staged rollout from its per-cohort fleet totals.

    The challenger cohort must be non-empty, clear the policy's energy
    floor, and strictly outrank the champion cohort on the weighted
    online score; anything else keeps the champion.
    """
    challenger = cohorts.get(COHORT_CHALLENGER)
    champion = cohorts.get(COHORT_CHAMPION)
    reasons: Tuple[str, ...]
    if challenger is None or challenger.devices == 0:
        return PromotionDecision(
            version=challenger_version,
            promoted=False,
            champion_version=champion_version,
            challenger_score=0.0,
            champion_score=(
                _cohort_score(champion, policy) if champion else 0.0
            ),
            reasons=(
                "challenger cohort is empty; raise challenger_fraction "
                "or the fleet size",
            ),
        )
    challenger_score = _cohort_score(challenger, policy)
    champion_score = _cohort_score(champion, policy) if champion else 0.0
    failures = []
    if challenger.savings < policy.min_energy_saved_fraction:
        failures.append(
            f"cohort energy savings {challenger.savings:.2%} below floor "
            f"{policy.min_energy_saved_fraction:.2%}"
        )
    if challenger.hit_rate < policy.min_hit_rate:
        failures.append(
            f"cohort hit rate {challenger.hit_rate:.2%} below floor "
            f"{policy.min_hit_rate:.2%}"
        )
    if failures:
        reasons = tuple(failures)
        promoted = False
    elif champion is None or champion.devices == 0:
        reasons = ("champion cohort is empty; promoting by default",)
        promoted = True
    elif challenger_score > champion_score:
        reasons = (
            f"challenger cohort outranks champion cohort "
            f"({challenger_score:.6f} > {champion_score:.6f})",
        )
        promoted = True
    else:
        reasons = (
            f"challenger cohort does not outrank champion cohort "
            f"({challenger_score:.6f} <= {champion_score:.6f})",
        )
        promoted = False
    return PromotionDecision(
        version=challenger_version,
        promoted=promoted,
        champion_version=champion_version,
        challenger_score=challenger_score,
        champion_score=champion_score,
        reasons=reasons,
    )


def _pick_challenger(
    registry: PackageRegistry,
    game_name: str,
    config: SnipConfig,
    version: Optional[int],
) -> RegistryEntry:
    state = registry.load_state(game_name, config)
    if version is not None:
        return state.entry(version)
    candidates = [
        entry_version
        for entry_version in sorted(state.entries)
        if state.entries[entry_version].status == STATUS_CANDIDATE
    ]
    if not candidates:
        raise PromotionError(
            f"no pending candidates to roll out for {game_name!r}; "
            f"publish a package first"
        )
    return state.entry(candidates[-1])


def run_staged_rollout(
    registry: PackageRegistry,
    game_name: str,
    spec: FleetSpec,
    config: Optional[SnipConfig] = None,
    policy: Optional[PromotionPolicy] = None,
    challenger_version: Optional[int] = None,
    executor: Optional[FleetExecutor] = None,
    telemetry: Optional[TelemetryBus] = None,
    checkpoint=None,
    max_live_shards: int = DEFAULT_MAX_LIVE_SHARDS,
) -> RolloutResult:
    """Trial a challenger on a fleet fraction and act on the outcome.

    Resolves the champion and the challenger (default: latest
    candidate) from the registry, runs the cohort-split fleet described
    by ``spec`` (which must deal a challenger cohort), and applies the
    verdict of :func:`judge_cohorts` to the registry: auto-promote on a
    win, auto-rollback of the challenger cohort (entry rejected) on a
    loss.
    """
    config = config or SnipConfig()
    policy = policy or PromotionPolicy()
    if spec.game_name != game_name:
        raise PromotionError(
            f"spec simulates {spec.game_name!r}, not {game_name!r}"
        )
    if spec.challenger_fraction <= 0:
        raise PromotionError(
            "staged rollout needs a challenger cohort; "
            "set challenger_fraction > 0"
        )
    state = registry.load_state(game_name, config)
    champion_entry = state.champion()
    if champion_entry is None:
        raise PromotionError(
            f"no champion to roll out against for {game_name!r}; "
            f"promote one first"
        )
    challenger_entry = _pick_challenger(
        registry, game_name, config, challenger_version
    )
    if challenger_entry.version == champion_entry.version:
        raise PromotionError(
            f"version {challenger_entry.version} is already the champion"
        )
    champion_package = registry.load_package(champion_entry)
    challenger_package = registry.load_package(challenger_entry)
    spec = replace(
        spec,
        champion_digest=champion_entry.digest,
        challenger_digest=challenger_entry.digest,
    )
    engine = FleetEngine(
        spec,
        executor=executor,
        config=config,
        telemetry=telemetry,
        checkpoint=checkpoint,
        package=champion_package,
        challenger=challenger_package,
        max_live_shards=max_live_shards,
    )
    report = engine.run()
    decision = judge_cohorts(
        challenger_version=challenger_entry.version,
        champion_version=champion_entry.version,
        cohorts=report.cohorts or {},
        policy=policy,
    )
    registry.apply_decision(game_name, config, decision)
    return RolloutResult(
        action=ACTION_PROMOTED if decision.promoted else ACTION_ROLLED_BACK,
        decision=decision,
        report=report,
        champion_version=champion_entry.version,
        challenger_version=challenger_entry.version,
    )
