"""Runtime quality control (paper Sec. VII-B, closing paragraphs).

The paper sketches two safety valves beyond continuous learning: the
profiler "can direct the mobile phone to *clear* the PFI lookup table if
it detects the error rate to worsen", and user feedback on execution
quality can "even *turn off* SNIP". :class:`QualityController`
implements both around a live :class:`~repro.core.runtime.SnipRuntime`:

* it audits a sample of would-be hits against ground truth (the paper's
  cloud would do this by replaying uploaded events), maintaining a
  rolling error estimate;
* if the estimate crosses ``clear_threshold`` the table is cleared and
  online learning restarts from scratch;
* if quality stays bad after ``max_clears`` resets — or enough explicit
  user complaints arrive — SNIP is disabled outright.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque

from repro.android.events import Event
from repro.core.runtime import SnipRuntime
from repro.rng import ReproRng


@dataclass
class QualityReport:
    """The controller's current view of runtime health."""

    audited_hits: int
    audit_errors: int
    rolling_error: float
    clears: int
    complaints: int
    snip_enabled: bool


class QualityController:
    """Audits a SNIP runtime and pulls the safety levers.

    Parameters
    ----------
    runtime:
        The live runtime to supervise.
    audit_rate:
        Probability of auditing any given hit (audits are not free on a
        real device; sampling keeps the cost negligible).
    window:
        Number of recent audits in the rolling error estimate.
    clear_threshold:
        Rolling error above which the table is cleared.
    max_clears:
        After this many clears, further bad quality disables SNIP.
    complaint_limit:
        Explicit user complaints that disable SNIP outright.
    """

    def __init__(
        self,
        runtime: SnipRuntime,
        audit_rate: float = 0.05,
        window: int = 50,
        clear_threshold: float = 0.10,
        max_clears: int = 2,
        complaint_limit: int = 3,
        seed: int = 0,
    ) -> None:
        if not 0.0 < audit_rate <= 1.0:
            raise ValueError(f"audit_rate out of (0, 1]: {audit_rate}")
        if window < 5:
            raise ValueError(f"window too small: {window}")
        if not 0.0 < clear_threshold < 1.0:
            raise ValueError(f"clear_threshold out of (0, 1): {clear_threshold}")
        self.runtime = runtime
        self.audit_rate = audit_rate
        self.window = window
        self.clear_threshold = clear_threshold
        self.max_clears = max_clears
        self.complaint_limit = complaint_limit
        self._rng = ReproRng(seed).fork("quality")
        self._recent: Deque[bool] = deque(maxlen=window)
        self._audited = 0
        self._errors = 0
        self._clears = 0
        self._complaints = 0

    # -- delivery wrapper ---------------------------------------------------

    def deliver(self, event: Event) -> None:
        """Deliver one event, sampling audits on would-be hits."""
        if (
            self.runtime.enabled
            and self._rng.chance(self.audit_rate)
            and self.runtime.table.knows(event.event_type)
        ):
            verdict = self.runtime.would_be_correct(event)
            if verdict is not None:
                self._record_audit(correct=verdict)
        self.runtime.deliver(event)

    def _record_audit(self, correct: bool) -> None:
        self._audited += 1
        if not correct:
            self._errors += 1
        self._recent.append(correct)
        if len(self._recent) >= max(10, self.window // 5):
            if self.rolling_error > self.clear_threshold:
                self._escalate()

    def _escalate(self) -> None:
        """Worsening error: clear the table, or give up entirely."""
        self._recent.clear()
        if self._clears >= self.max_clears:
            self.runtime.enabled = False
            return
        self.runtime.table.clear()
        self._clears += 1

    # -- user feedback ---------------------------------------------------------

    def user_feedback(self, satisfied: bool) -> None:
        """Record explicit user feedback on execution quality."""
        if satisfied:
            self._complaints = max(0, self._complaints - 1)
            return
        self._complaints += 1
        if self._complaints >= self.complaint_limit:
            self.runtime.enabled = False

    # -- reporting ----------------------------------------------------------------

    @property
    def rolling_error(self) -> float:
        """Error rate over the recent audit window."""
        if not self._recent:
            return 0.0
        return 1.0 - sum(self._recent) / len(self._recent)

    def report(self) -> QualityReport:
        """Snapshot of the controller's counters."""
        return QualityReport(
            audited_hits=self._audited,
            audit_errors=self._errors,
            rolling_error=self.rolling_error,
            clears=self._clears,
            complaints=self._complaints,
            snip_enabled=self.runtime.enabled,
        )
