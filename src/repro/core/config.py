"""SNIP configuration knobs."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SnipConfig:
    """Everything tunable about the SNIP pipeline.

    Attributes
    ----------
    forest_trees / forest_depth / forest_min_leaf:
        Random-forest shape for the PFI model.
    pfi_repeats:
        Permutation repeats per feature (averaged).
    max_rows_per_type:
        Cap on profile rows fed to the PFI model per event type (the
        table-error check still uses every record).
    lookup_base_cycles / lookup_cycles_per_byte:
        Runtime cost model of one table probe: hashing the event object
        plus comparing each necessary input byte (Fig. 11c overheads).
    """

    forest_trees: int = 6
    forest_depth: int = 14
    forest_min_leaf: int = 2
    pfi_repeats: int = 2
    max_rows_per_type: int = 4000
    lookup_base_cycles: int = 400_000
    lookup_cycles_per_byte: int = 200
    #: Confidence gate on shipped table entries: a key only enters the
    #: table if it occurred at least this many times in the profile...
    table_min_count: int = 3
    #: ...and its majority output carried at least this weight share.
    table_consistency: float = 0.98
    #: On-device continuous learning: a key observed this many times
    #: with consistent outputs is promoted to a live entry (the paper's
    #: Option 2 loop at its finest granularity). 0 disables it.
    online_warmup: int = 2
    #: Hard cap on live table entries per game on the device (shipped
    #: plus online-promoted). 0 means unbounded. When full, promoting a
    #: new entry evicts the lowest-confidence (profile_weight) one.
    table_capacity_entries: int = 50_000
    #: Minimum absolute gated-coverage gain for a field to join the key.
    selection_epsilon: float = 0.002
    seed: int = 0

    def __post_init__(self) -> None:
        if self.forest_trees < 1 or self.forest_depth < 1 or self.forest_min_leaf < 1:
            raise ConfigurationError("forest parameters must be positive")
        if self.pfi_repeats < 1:
            raise ConfigurationError("pfi_repeats must be positive")
        if self.max_rows_per_type < 10:
            raise ConfigurationError("max_rows_per_type must be at least 10")
        if self.lookup_base_cycles < 0 or self.lookup_cycles_per_byte < 0:
            raise ConfigurationError("lookup cost constants must be non-negative")
        if self.table_min_count < 1:
            raise ConfigurationError("table support thresholds must be positive")
        if self.online_warmup < 0:
            raise ConfigurationError("online_warmup must be non-negative")
        if self.table_capacity_entries < 0:
            raise ConfigurationError("table_capacity_entries must be >= 0")
        if not 0.5 <= self.table_consistency <= 1.0:
            raise ConfigurationError(
                f"table_consistency out of [0.5, 1]: {self.table_consistency}"
            )
        if not 0.0 <= self.selection_epsilon < 0.5:
            raise ConfigurationError(
                f"selection_epsilon out of [0, 0.5): {self.selection_epsilon}"
            )
