"""PFI over replayed profiles: rank every input location's importance.

For each event type, a random forest is trained to predict the output
equivalence class from the full input record (every location in the
universe), then permutation importance ranks the locations. The ranking
*orders* the greedy trimming in :mod:`repro.core.selection`; the actual
keep/drop decisions are validated against exact table error, so a weak
model costs selection quality, never correctness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.android.emulator import ProfileRecord
from repro.android.events import EventType
from repro.core.config import SnipConfig
from repro.core.fields import (
    FieldInfo,
    input_universe,
    record_inputs,
    records_by_event_type,
)
from repro.errors import ProfilerError
from repro.ml.dataset import Dataset
from repro.ml.encoding import FeatureEncoder
from repro.ml.forest import RandomForestClassifier
from repro.ml.permutation import FeatureImportance, permutation_importance


@dataclass
class EventTypeProfile:
    """One event type's profile, encoded and ready for modelling."""

    event_type: EventType
    universe: List[FieldInfo]
    encoder: FeatureEncoder
    records: List[ProfileRecord]
    dataset: Dataset

    @property
    def session_count(self) -> int:
        """Distinct recorded sessions contributing to this profile."""
        return len({record.session for record in self.records})

    @property
    def total_cycles(self) -> float:
        """Cycle mass of this event type (aggregation weight)."""
        return float(sum(record.trace.total_cycles for record in self.records))

    def field_info(self, name: str) -> FieldInfo:
        """Universe entry by name."""
        for info in self.universe:
            if info.name == name:
                return info
        raise KeyError(name)


@dataclass
class PfiAnalysis:
    """PFI results for a whole profile: one entry per event type."""

    profiles: Dict[EventType, EventTypeProfile]
    importances: Dict[EventType, List[FeatureImportance]]
    models: Dict[EventType, RandomForestClassifier]

    def event_types(self) -> List[EventType]:
        """Event types present, heaviest (by cycles) first."""
        return sorted(
            self.profiles,
            key=lambda event_type: -self.profiles[event_type].total_cycles,
        )


def build_event_profiles(
    records: Sequence[ProfileRecord], config: SnipConfig
) -> Dict[EventType, EventTypeProfile]:
    """Group, encode, and package a profile per event type."""
    if not records:
        raise ProfilerError("profile is empty")
    profiles: Dict[EventType, EventTypeProfile] = {}
    for event_type, group in records_by_event_type(records).items():
        universe = input_universe(event_type, group)
        encoder = FeatureEncoder([info.name for info in universe])
        features = encoder.encode_records([record_inputs(r) for r in group])
        labels = [record.trace.output_class() for record in group]
        weights = [float(record.trace.total_cycles) for record in group]
        profiles[event_type] = EventTypeProfile(
            event_type=event_type,
            universe=universe,
            encoder=encoder,
            records=list(group),
            dataset=Dataset(encoder.feature_names, features, labels, weights),
        )
    return profiles


def run_pfi(records: Sequence[ProfileRecord], config: SnipConfig) -> PfiAnalysis:
    """Train per-type forests and rank input locations by importance."""
    profiles = build_event_profiles(records, config)
    importances: Dict[EventType, List[FeatureImportance]] = {}
    models: Dict[EventType, RandomForestClassifier] = {}
    rng = np.random.default_rng(config.seed)
    for event_type, profile in profiles.items():
        dataset = profile.dataset
        rows = dataset.n_rows
        if rows > config.max_rows_per_type:
            keep = rng.choice(rows, size=config.max_rows_per_type, replace=False)
            features = dataset.features[keep]
            labels = dataset.labels[keep]
            weights = dataset.sample_weight[keep]
        else:
            features = dataset.features
            labels = dataset.labels
            weights = dataset.sample_weight
        # The batched tree descent and in-place PFI column swaps both
        # index this matrix heavily; one contiguous float64 copy here
        # keeps every downstream gather on the fast path.
        features = np.ascontiguousarray(features, dtype=np.float64)
        model = RandomForestClassifier(
            n_trees=config.forest_trees,
            max_depth=config.forest_depth,
            min_samples_leaf=config.forest_min_leaf,
            seed=config.seed,
        )
        model.fit(features, labels, weights, n_classes=dataset.n_classes)
        importances[event_type] = permutation_importance(
            model,
            features,
            labels,
            dataset.feature_names,
            rng=rng,
            repeats=config.pfi_repeats,
            sample_weight=weights,
        )
        models[event_type] = model
    return PfiAnalysis(profiles=profiles, importances=importances, models=models)
