"""SNIP device runtime: probe the table, short-circuit or execute.

Sec. V-B, last stage: "the lookup table is loaded as a hash table during
app initialization. During execution, on any event, the table is indexed
with the event hash-code and if hit, all the other necessary inputs are
loaded and compared ... If the comparisons lead to a match, the
execution is directly short-circuited. Else, process the event as
baseline."

The probe is not free (Fig. 11c): every event pays the hash plus a
comparison over the necessary-input bytes, charged under the
``lookup`` energy tag so the overhead analysis can slice it out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.android.binder import Binder
from repro.android.dispatch import (
    charge_delivery,
    charge_trace,
    charge_upkeep,
    delivery_upkeep_pattern,
)
from repro.android.events import Event, EventType
from repro.android.sensor_hub import SensorHub
from repro.android.sensor_manager import SensorManager
from repro.core.config import SnipConfig
from repro.core.fields import FieldInfo
from repro.core.table import SnipTable, TableEntry
from repro.games.base import Game, ProcessingTrace
from repro.soc.energy import TAG_LOOKUP, ColumnarMeter
from repro.soc.soc import IP_DISPLAY, Soc


@dataclass
class _OnlineEntry:
    """A key being confirmed by on-device continuous learning."""

    signature: Tuple
    writes: Tuple
    consecutive: int
    cycles_sum: float
    occurrences: int


@dataclass
class RuntimeStats:
    """Counters the Fig. 11 analyses read off the runtime."""

    events: int = 0
    hits: int = 0
    misses: int = 0
    online_promotions: int = 0
    evictions: int = 0
    avoided_cycles: float = 0.0
    executed_cycles: float = 0.0
    compared_bytes: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of events short-circuited."""
        return self.hits / self.events if self.events else 0.0

    @property
    def coverage(self) -> float:
        """Cycle-weighted fraction of execution short-circuited."""
        total = self.avoided_cycles + self.executed_cycles
        return self.avoided_cycles / total if total else 0.0


class SnipRuntime:
    """Event loop with SNIP short-circuiting installed."""

    def __init__(
        self,
        soc: Soc,
        game: Game,
        table: SnipTable,
        config: Optional[SnipConfig] = None,
    ) -> None:
        self.soc = soc
        self.game = game
        self.table = table
        self.config = config or SnipConfig()
        self.hub = SensorHub(soc)
        self.manager = SensorManager(soc)
        self.binder = Binder(soc)
        self.stats = RuntimeStats()
        self._online: dict = {}
        #: Per-event-type compiled field readers: the ``event:``/
        #: ``hist:``/``extern:`` kind of every necessary input is
        #: resolved once at install time, so the per-event probe does no
        #: string parsing and no selection lookup.
        self._probes: Dict[EventType, Tuple[Callable[[Event], object], ...]] = {
            event_type: tuple(
                self._compile_reader(info)
                for info in self.table.fields_for(event_type)
            )
            for event_type in self.table.selection.by_event_type
        }
        #: Event types whose selected fields are all ``event:``-kind —
        #: their probe keys depend only on the event object, never on
        #: game state or extern caches, so whole-session key columns can
        #: be precomputed (see :meth:`session_keys`).
        self._event_only = frozenset(
            event_type
            for event_type in self._probes
            if all(
                info.name.partition(":")[0] == "event"
                for info in self.table.fields_for(event_type)
            )
        )
        #: Columnar sessions install a :class:`ColumnarMeter` at SoC
        #: build time; delivery/upkeep charges then arrive as static
        #: patterns (byte-identical order and values) instead of per
        #: event sensor-object traversals.
        self._columnar = isinstance(soc.meter, ColumnarMeter)
        #: Kill switch (Sec. VII-B): when False every event takes the
        #: baseline path; probes, hits, and online learning all stop.
        self.enabled = True

    # -- key gathering -----------------------------------------------------

    def live_key(self, event: Event) -> Tuple:
        """Current values of the necessary inputs for ``event``.

        Event fields come from the event object; history fields are the
        game's live state; extern fields read the RAM-cached copy of the
        last fetched asset. Each field is read by a closure compiled at
        table-install time (see ``_compile_reader``); event types absent
        from the selection yield the empty key, exactly as
        :meth:`repro.core.table.SnipTable.fields_for` would report.
        """
        return tuple(
            read(event) for read in self._probes.get(event.event_type, ())
        )

    def live_key_reference(self, event: Event) -> Tuple:
        """Uncompiled key gathering (golden reference for the tests).

        Re-resolves the field kind and the selection per event, like the
        runtime originally did; the equivalence suite asserts the
        compiled probes agree with this on every event.
        """
        key = []
        for info in self.table.fields_for(event.event_type):
            key.append(self._live_value(event, info))
        return tuple(key)

    def _compile_reader(self, info: FieldInfo) -> Callable[[Event], object]:
        """Resolve one necessary input's kind into a direct reader."""
        kind, _, name = info.name.partition(":")
        game = self.game
        if kind == "event":
            def read(event: Event) -> object:
                return event.values.get(name)
        elif kind == "hist":
            def read(event: Event) -> object:
                state = game.state
                if state.has(name):
                    return state.peek(name)
                return None
        elif kind == "extern":
            def read(event: Event) -> object:
                return game.extern_source.peek(name)[0]
        else:
            raise ValueError(f"unknown field kind in {info.name!r}")
        return read

    def _live_value(self, event: Event, info: FieldInfo):
        kind, _, name = info.name.partition(":")
        if kind == "event":
            return event.values.get(name)
        if kind == "hist":
            if self.game.state.has(name):
                return self.game.state.peek(name)
            return None
        if kind == "extern":
            return self.game.extern_source.peek(name)[0]
        raise ValueError(f"unknown field kind in {info.name!r}")  # pragma: no cover

    # -- probe cost ----------------------------------------------------------

    def _charge_probe(self, event: Event) -> int:
        """Charge the table probe for one event; returns bytes compared."""
        compare_bytes = self.table.comparison_bytes(event.event_type)
        cycles = (
            self.config.lookup_base_cycles
            + self.config.lookup_cycles_per_byte * compare_bytes
        )
        self.soc.cpu.execute(cycles, big=True, tag=TAG_LOOKUP)
        # The entry and the live inputs both cross memory once.
        self.soc.memory.transfer(2 * compare_bytes, tag=TAG_LOOKUP)
        return compare_bytes

    # -- batched probing ----------------------------------------------------

    def session_keys(self, events: Sequence[Event]) -> List[Optional[Tuple]]:
        """Precomputed probe keys for the event-only types in ``events``.

        Keys over ``event:`` fields alone are state-independent — the
        same tuple falls out of :meth:`live_key` before processing and
        of the online-learning re-read after it — so they are valid for
        the whole session regardless of when each event executes.
        State-dependent types (and types the table does not know) get
        ``None``; :meth:`deliver` falls back to live reads for those.
        """
        probes = self._probes
        event_only = self._event_only
        keys: List[Optional[Tuple]] = []
        for event in events:
            event_type = event.event_type
            if event_type in event_only:
                keys.append(tuple(read(event) for read in probes[event_type]))
            else:
                keys.append(None)
        return keys

    def probe_batch(
        self, events: Sequence[Event]
    ) -> Tuple[List[Optional[Tuple]], List[Optional[TableEntry]], np.ndarray]:
        """Probe the memo table for a whole session in one pass.

        Groups the events by type, builds each type's key column with
        the compiled field readers, gathers that column's entries from
        the table in one pass (:meth:`SnipTable.lookup_batch`), and
        returns ``(keys, entries, hit_mask)`` indexed like ``events``.
        Unknown types keep ``None`` keys and entries.

        Semantics match a scalar ``live_key`` + ``lookup`` loop against
        the table's *current* contents and the game's *current* state:
        callers either restrict themselves to event-only selections or
        hold state and table fixed across the batch (the hot-path
        benchmark and the offline analyses do the latter).
        """
        count = len(events)
        keys: List[Optional[Tuple]] = [None] * count
        entries: List[Optional[TableEntry]] = [None] * count
        by_type: Dict[EventType, List[int]] = {}
        for index, event in enumerate(events):
            by_type.setdefault(event.event_type, []).append(index)
        for event_type, indices in by_type.items():
            if not self.table.knows(event_type):
                continue
            readers = self._probes.get(event_type, ())
            if readers:
                columns = [[read(events[i]) for i in indices] for read in readers]
                type_keys: List[Tuple] = list(zip(*columns))
            else:
                type_keys = [()] * len(indices)
            found = self.table.lookup_batch(event_type, type_keys)
            for index, key, entry in zip(indices, type_keys, found):
                keys[index] = key
                entries[index] = entry
        hit_mask = np.fromiter(
            (entry is not None for entry in entries), dtype=bool, count=count
        )
        return keys, entries, hit_mask

    # -- event loop -------------------------------------------------------------

    def deliver(
        self, event: Event, precomputed_key: Optional[Tuple] = None
    ) -> Optional[ProcessingTrace]:
        """Run one event; returns the trace, or ``None`` when snipped.

        ``precomputed_key`` must come from :meth:`session_keys` (only
        event-only types yield one); it replaces both the probe's live
        key gather and the online-learning re-read.
        """
        if self._columnar:
            self.game.advance_engine(event)
            self.soc.meter.extend(delivery_upkeep_pattern(self.game, event))
            self.stats.executed_cycles += self.game.upkeep_cycles_for(
                event.event_type
            )
        else:
            charge_delivery(self.soc, self.hub, self.manager, self.binder, event)
            self.stats.executed_cycles += charge_upkeep(self.soc, self.game, event)
        self.stats.events += 1
        if self.enabled and self.table.knows(event.event_type):
            self.stats.compared_bytes += self._charge_probe(event)
            key = (
                precomputed_key
                if precomputed_key is not None
                else self.live_key(event)
            )
            entry = self.table.lookup(event.event_type, key)
            if entry is not None:
                # Hit: substitute the stored outputs, skip all processing.
                # The panel still scans out this vsync/camera frame —
                # only producing new pixels was avoided.
                if event.event_type in (EventType.FRAME_TICK, EventType.CAMERA_FRAME):
                    self.soc.ip(IP_DISPLAY).invoke(1.0, bytes_in=512 * 1024)
                self.game.apply_outputs(entry.writes)
                applied_bytes = sum(write.nbytes for write in entry.writes)
                if applied_bytes:
                    self.soc.memory.transfer(applied_bytes, tag=TAG_LOOKUP)
                self.stats.hits += 1
                self.stats.avoided_cycles += entry.avg_cycles
                return None
        trace = self.game.process(event)
        charge_trace(self.soc, trace)
        self.stats.misses += 1
        self.stats.executed_cycles += trace.total_cycles
        if (
            self.enabled
            and self.config.online_warmup > 0
            and self.table.knows(event.event_type)
        ):
            self._learn_online(event, trace, key=precomputed_key)
        return trace

    def _learn_online(
        self,
        event: Event,
        trace: ProcessingTrace,
        key: Optional[Tuple] = None,
    ) -> None:
        """Continuous learning, Option 2 at its finest granularity.

        Every miss contributes evidence for its necessary-input key; a
        key whose outputs agree ``config.online_warmup`` times in a row
        is promoted to a live table entry. The necessary inputs (what
        to key on) still come from the cloud's PFI — this loop only
        fills values the shipped profile had not seen.

        ``key`` short-circuits the live re-read when the caller already
        holds this event's (state-independent) precomputed key.
        """
        if key is None:
            key = self.live_key(event)
        signature = trace.output_signature()
        slot = (event.event_type, key)
        entry = self._online.get(slot)
        if entry is None or entry.signature != signature:
            self._online[slot] = _OnlineEntry(
                signature=signature,
                writes=tuple(trace.writes),
                consecutive=1,
                cycles_sum=float(trace.total_cycles),
                occurrences=1,
            )
            return
        entry.consecutive += 1
        entry.occurrences += 1
        entry.cycles_sum += trace.total_cycles
        if entry.consecutive >= self.config.online_warmup:
            from repro.core.table import TableEntry

            capacity = self.config.table_capacity_entries
            if capacity and self.table.entry_count >= capacity:
                # The device table is full: make room by evicting the
                # lowest-confidence entry (a phone cannot grow its hash
                # table without bound).
                self.table.evict_weakest()
                self.stats.evictions += 1
            self.table.install_entry(
                event.event_type,
                key,
                TableEntry(
                    writes=entry.writes,
                    avg_cycles=entry.cycles_sum / entry.occurrences,
                    profile_weight=entry.cycles_sum,
                ),
            )
            self.stats.online_promotions += 1
            del self._online[slot]

    # -- offline correctness evaluation ------------------------------------------

    def would_be_correct(self, event: Event) -> Optional[bool]:
        """Whether a hit on ``event`` would reproduce the true outputs.

        Evaluation-only helper: processes the event on a *fresh clone*
        of the live state so neither path pollutes the session. Returns
        ``None`` on a miss (nothing would be substituted).
        """
        entry = self.table.lookup(event.event_type, self.live_key(event))
        if entry is None:
            return None
        shadow = self.game.fresh()
        # Recreate the live state on the shadow instance.
        for field in self.game.state:
            shadow.state.write(field.name, field.value, nbytes=field.nbytes)
        shadow.screen.update(self.game.screen)
        truth = shadow.process(event)
        predicted = {write.name: write.value for write in entry.writes}
        actual = {write.name: write.value for write in truth.writes}
        return predicted == actual
