"""Federated table building (paper Sec. VII-C future direction).

The paper's backend is expensive — "processing 2 minutes game play ...
could take around 2 days" on a 48-core server — and it names federated
learning [45] as the way out. This module implements that direction for
the lookup-table half of the pipeline:

* each **device** replays its own sessions locally against the shipped
  necessary-input selection and uploads only *sufficient statistics*
  per key (output-signature weights, occurrence counts, average cycles)
  — never raw events;
* the **cloud** merges contributions from many users and re-derives the
  confidence-gated table, with cross-*user* support standing in for the
  cross-session gate.

Collective learning falls out for free: a context only one user ever
reaches still ships to everyone once enough of that user's sessions
agree, and popular contexts are confirmed across the whole fleet.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.android.emulator import Emulator
from repro.android.events import EventType
from repro.android.tracing import RecordedTrace
from repro.core.config import SnipConfig
from repro.core.selection import SelectedInputs
from repro.core.table import SnipTable, TableEntry
from repro.errors import ProfilerError
from repro.games.base import FieldWrite
from repro.games.registry import GAME_CONTENT_SEED, create_game

#: (event_type, key) — the federated aggregation unit.
Slot = Tuple[EventType, Tuple]

#: A key confirmed by this many distinct devices ships without needing
#: to clear the per-device occurrence gate.
MIN_CONFIRMING_DEVICES = 2


@dataclass
class DeviceContribution:
    """One device's uploaded statistics (no raw events).

    ``signature_weight`` carries cycle-weighted output votes per key;
    ``writes`` carries the concrete output record for each signature the
    device observed (needed once, fleet-wide, to materialise entries).
    """

    device_id: int
    game_name: str
    events_observed: int = 0
    signature_weight: Dict[Slot, Counter] = field(default_factory=dict)
    occurrences: Dict[Slot, int] = field(default_factory=dict)
    cycle_sums: Dict[Slot, float] = field(default_factory=dict)
    writes: Dict[Tuple, Tuple[FieldWrite, ...]] = field(default_factory=dict)

    @property
    def upload_bytes(self) -> int:
        """Rough uplink size: keys, votes, and counters."""
        total = 0
        for (event_type, key), votes in self.signature_weight.items():
            total += 8 * len(key) + 24 * len(votes) + 16
        return total


class ContributionBuilder:
    """Incremental device-side pass: fold one session at a time.

    The fleet engine streams session traces through this instead of
    materialising a device's whole session list — each trace is
    replayed, folded into the statistics, and dropped, so device-side
    memory is bounded by a single session however many sessions the
    spec plays. Sessions must be added in session order; the emitted
    statistics are identical to the batch
    :func:`build_device_contribution` over the same traces.
    """

    def __init__(
        self, device_id: int, game_name: str, selection: SelectedInputs
    ) -> None:
        self.contribution = DeviceContribution(
            device_id=device_id, game_name=game_name
        )
        self._selection = selection
        self._emulator = Emulator(verify=False)
        self._sessions = 0

    def add_session(self, trace: RecordedTrace, session: int) -> None:
        """Replay one session locally and fold its statistics."""
        contribution = self.contribution
        selection = self._selection
        game = create_game(contribution.game_name, seed=GAME_CONTENT_SEED)
        for record in self._emulator.replay(game, trace, session=session):
            if record.event_type not in selection.by_event_type:
                continue
            fields = selection.fields_for(record.event_type)
            key = SnipTable.key_for_record(record, fields)
            slot: Slot = (record.event_type, key)
            signature = record.trace.output_signature()
            contribution.signature_weight.setdefault(slot, Counter())[
                signature
            ] += record.trace.total_cycles
            contribution.occurrences[slot] = contribution.occurrences.get(slot, 0) + 1
            contribution.cycle_sums[slot] = (
                contribution.cycle_sums.get(slot, 0.0) + record.trace.total_cycles
            )
            contribution.writes.setdefault(signature, tuple(record.trace.writes))
            contribution.events_observed += 1
        self._sessions += 1

    def finish(self) -> DeviceContribution:
        """The device's upload; raises if no sessions were folded."""
        if self._sessions == 0:
            raise ProfilerError(
                f"device {self.contribution.device_id}: no sessions to contribute"
            )
        return self.contribution


def build_device_contribution(
    device_id: int,
    game_name: str,
    traces: Iterable[RecordedTrace],
    selection: SelectedInputs,
) -> DeviceContribution:
    """Device-side pass: replay own sessions, emit statistics.

    The replay runs on the phone (it is the same deterministic app), so
    the cloud's emulation cost disappears — the paper's stated goal for
    the federated direction. ``traces`` is consumed exactly once, so
    generators are fine.
    """
    builder = ContributionBuilder(device_id, game_name, selection)
    for session, trace in enumerate(traces):
        builder.add_session(trace, session)
    return builder.finish()


def _note_device(seen: List[int], device_id: int, cap: int) -> None:
    """Record a distinct device id, stopping once ``cap`` are known.

    The confirmation gates only ever ask "did at least *cap* distinct
    devices confirm this?", so tracking the first ``cap`` distinct ids
    answers them exactly while keeping per-slot memory O(cap) — a full
    id set would grow with the fleet (10^6 devices x live slots was the
    aggregator's memory wall).
    """
    if len(seen) < cap and device_id not in seen:
        seen.append(device_id)


class FederatedAggregator:
    """Cloud-side merge: many devices' statistics -> one gated table.

    Memory is bounded by the number of distinct slots (game content),
    never by the number of devices merged: per-slot device support is
    tracked only up to the confirmation threshold.
    """

    def __init__(self, selection: SelectedInputs, config: SnipConfig) -> None:
        self.selection = selection
        self.config = config
        self._votes: Dict[Slot, Counter] = defaultdict(Counter)
        #: First MIN_CONFIRMING_DEVICES distinct confirming ids per slot.
        self._confirming: Dict[Slot, List[int]] = defaultdict(list)
        #: First two distinct contributing ids fleet-wide.
        self._contributors: List[int] = []
        self._occurrences: Dict[Slot, int] = defaultdict(int)
        self._cycle_sums: Dict[Slot, float] = defaultdict(float)
        self._writes: Dict[Tuple, Tuple[FieldWrite, ...]] = {}
        self._contributions = 0

    @property
    def contribution_count(self) -> int:
        """How many device uploads have been merged."""
        return self._contributions

    def merge(self, contribution: DeviceContribution) -> None:
        """Fold one device's statistics into the fleet aggregate."""
        for slot, votes in contribution.signature_weight.items():
            self._votes[slot].update(votes)
            _note_device(
                self._confirming[slot],
                contribution.device_id,
                MIN_CONFIRMING_DEVICES,
            )
            self._occurrences[slot] += contribution.occurrences[slot]
            self._cycle_sums[slot] += contribution.cycle_sums[slot]
        if contribution.signature_weight:
            _note_device(self._contributors, contribution.device_id, 2)
        for signature, writes in contribution.writes.items():
            self._writes.setdefault(signature, writes)
        self._contributions += 1

    def absorb(self, other: "FederatedAggregator") -> None:
        """Merge another aggregator's partial state into this one.

        Used to combine per-range partial reductions; ``other`` must
        cover device ids after this aggregator's (left-to-right merge
        order, matching the canonical device order).
        """
        for slot, votes in other._votes.items():
            self._votes[slot].update(votes)
            confirming = self._confirming[slot]
            for device_id in other._confirming.get(slot, ()):
                _note_device(confirming, device_id, MIN_CONFIRMING_DEVICES)
            self._occurrences[slot] += other._occurrences[slot]
            self._cycle_sums[slot] += other._cycle_sums[slot]
        for device_id in other._contributors:
            _note_device(self._contributors, device_id, 2)
        for signature, writes in other._writes.items():
            self._writes.setdefault(signature, writes)
        self._contributions += other._contributions

    def build_table(self) -> SnipTable:
        """Materialise the gated table from the fleet aggregate.

        The support gate counts distinct *devices* when more than one
        contributed, otherwise raw occurrences — the federated analogue
        of the per-profile session gate.
        """
        if not self._votes:
            raise ProfilerError("no contributions merged yet")
        multi_device = len(self._contributors) >= 2
        table = SnipTable(self.selection)
        for slot, votes in self._votes.items():
            if multi_device and len(self._confirming[slot]) >= MIN_CONFIRMING_DEVICES:
                pass  # fleet-confirmed context
            elif self._occurrences[slot] < self.config.table_min_count:
                continue
            majority_signature, majority_weight = votes.most_common(1)[0]
            group_weight = sum(votes.values())
            if majority_weight / group_weight < self.config.table_consistency:
                continue
            event_type, key = slot
            table.install_entry(
                event_type,
                key,
                TableEntry(
                    writes=self._writes[majority_signature],
                    avg_cycles=self._cycle_sums[slot] / self._occurrences[slot],
                    profile_weight=float(majority_weight),
                ),
            )
        return table


def federate_contributions(
    contributions: Sequence[DeviceContribution],
    selection: SelectedInputs,
    config: SnipConfig,
) -> Tuple[SnipTable, int]:
    """Cloud-side merge of already-computed device statistics.

    This is the entry point the fleet engine uses: workers return
    :class:`DeviceContribution` payloads from their shards and the
    reducer hands them here. Contributions are merged in device-id
    order so the built table is identical however the shards were
    scheduled.
    """
    aggregator = FederatedAggregator(selection, config)
    uplink = 0
    for contribution in sorted(contributions, key=lambda c: c.device_id):
        uplink += contribution.upload_bytes
        aggregator.merge(contribution)
    return aggregator.build_table(), uplink


def federate(
    game_name: str,
    per_device_traces: Dict[int, List[RecordedTrace]],
    selection: SelectedInputs,
    config: SnipConfig,
) -> Tuple[SnipTable, int]:
    """End-to-end federation: devices compute, cloud merges.

    Returns the fleet table and the total uplink bytes (the quantity the
    federated design minimises against shipping raw profiles).
    """
    contributions = [
        build_device_contribution(device_id, game_name, traces, selection)
        for device_id, traces in per_device_traces.items()
    ]
    return federate_contributions(contributions, selection, config)
