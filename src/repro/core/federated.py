"""Federated table building (paper Sec. VII-C future direction).

The paper's backend is expensive — "processing 2 minutes game play ...
could take around 2 days" on a 48-core server — and it names federated
learning [45] as the way out. This module implements that direction for
the lookup-table half of the pipeline:

* each **device** replays its own sessions locally against the shipped
  necessary-input selection and uploads only *sufficient statistics*
  per key (output-signature weights, occurrence counts, average cycles)
  — never raw events;
* the **cloud** merges contributions from many users and re-derives the
  confidence-gated table, with cross-*user* support standing in for the
  cross-session gate.

Collective learning falls out for free: a context only one user ever
reaches still ships to everyone once enough of that user's sessions
agree, and popular contexts are confirmed across the whole fleet.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.android.emulator import Emulator
from repro.android.events import Event, EventType
from repro.android.tracing import RecordedTrace
from repro.core.config import SnipConfig
from repro.core.selection import SelectedInputs
from repro.core.table import SnipTable, TableEntry
from repro.errors import ProfilerError
from repro.games.base import FieldWrite, InputCategory
from repro.games.registry import GAME_CONTENT_SEED, create_game, fresh_game

#: (event_type, key) — the federated aggregation unit.
Slot = Tuple[EventType, Tuple]

#: One folded event: ``(slot, signature, total_cycles, writes)`` — the
#: exact operands the scalar fold feeds its dicts, in event order.
FoldRecord = Tuple[Slot, Tuple, float, Tuple[FieldWrite, ...]]

#: One session's fold, compacted for replay: per-slot groups in
#: first-occurrence order, so applying a session costs a handful of
#: dict lookups per *slot* instead of several per *record*. Layout:
#: ``(observed, per_slot, writes_firsts)`` where ``per_slot`` rows are
#: ``(slot, count, cycles, votes_groups)`` — ``cycles`` the slot's
#: per-record cycle operands in event order, ``votes_groups`` the
#: slot's ``(signature, sig_cycles)`` groups in first-occurrence
#: order — and ``writes_firsts`` holds each distinct signature's first
#: writes tuple in session record order. Every contribution dict
#: accumulates each key independently, so grouping a key's operands
#: (while keeping them in order) reproduces the scalar fold's float
#: additions and dict insertion orders bit for bit.
SessionFold = Tuple[int, Tuple, Tuple]

#: Per-(selection, game) caches of session folds, keyed by the
#: session's event-value stream. The fold replays every session on a
#: fresh content-seed game, so its records are a pure function of
#: ``(game_name, selection, [(event_type, values)...])`` — timestamps
#: and sequence numbers never reach the statistics. Selections are
#: identified by content fingerprint, so equal selections built by
#: different shards share one cache.
_FOLD_CACHES: Dict[Tuple[Tuple, str], Dict[Tuple, SessionFold]] = {}
#: Streams cached per (selection, game); sessions beyond the cap still
#: fold correctly, they just stop populating the cache.
_FOLD_CACHE_CAP = 4096

#: Second cache level, underneath the session fold cache: per-event
#: replay memos keyed by ``(event type, event values, state cells,
#: screen contents)``. Handlers touch the world only through
#: :class:`~repro.games.base.HandlerContext` (event fields, state
#: reads, screen compares, seed-pure extern fetches), so that key
#: captures every input the handler can observe — two replays with
#: equal keys produce identical traces and identical mutations. A hit
#: replays the recorded writes via ``Game.apply_outputs`` and reuses
#: the ready-made fold record; only novel (state, event) pairs pay the
#: handler. Unselected event types cache ``None`` records (they still
#: mutate state). Unhashable state values fall back to a live replay.
_EVENT_MEMOS: Dict[
    Tuple[Tuple, str],
    Dict[Tuple, Tuple[Optional[FoldRecord], Tuple[FieldWrite, ...]]],
] = {}
_EVENT_MEMO_CAP = 65_536


def _selection_fingerprint(selection: SelectedInputs) -> Tuple:
    """Hashable content identity for a selection (cache partitioning)."""
    return tuple(
        (event_type.value, tuple(fields))
        for event_type, fields in selection.by_event_type.items()
    )

#: A key confirmed by this many distinct devices ships without needing
#: to clear the per-device occurrence gate.
MIN_CONFIRMING_DEVICES = 2


@dataclass
class DeviceContribution:
    """One device's uploaded statistics (no raw events).

    ``signature_weight`` carries cycle-weighted output votes per key;
    ``writes`` carries the concrete output record for each signature the
    device observed (needed once, fleet-wide, to materialise entries).
    """

    device_id: int
    game_name: str
    events_observed: int = 0
    signature_weight: Dict[Slot, Counter] = field(default_factory=dict)
    occurrences: Dict[Slot, int] = field(default_factory=dict)
    cycle_sums: Dict[Slot, float] = field(default_factory=dict)
    writes: Dict[Tuple, Tuple[FieldWrite, ...]] = field(default_factory=dict)

    @property
    def upload_bytes(self) -> int:
        """Rough uplink size: keys, votes, and counters."""
        total = 0
        for (event_type, key), votes in self.signature_weight.items():
            total += 8 * len(key) + 24 * len(votes) + 16
        return total


class ContributionBuilder:
    """Incremental device-side pass: fold one session at a time.

    The fleet engine streams session traces through this instead of
    materialising a device's whole session list — each trace is
    replayed, folded into the statistics, and dropped, so device-side
    memory is bounded by a single session however many sessions the
    spec plays. Sessions must be added in session order; the emitted
    statistics are identical to the batch
    :func:`build_device_contribution` over the same traces.
    """

    def __init__(
        self, device_id: int, game_name: str, selection: SelectedInputs
    ) -> None:
        self.contribution = DeviceContribution(
            device_id=device_id, game_name=game_name
        )
        self._selection = selection
        self._emulator = Emulator(verify=False)
        self._sessions = 0
        #: Per-event-type key plans for the fused fold: the ``event:``/
        #: ``hist:``/``extern:`` kind of each necessary input resolved
        #: once, so the per-event key build does no string parsing.
        self._plans: Dict[EventType, Tuple[Tuple[str, str], ...]] = {
            event_type: tuple(
                (info.name.partition(":")[0], info.name.partition(":")[2])
                for info in selection.fields_for(event_type)
            )
            for event_type in selection.by_event_type
        }
        cache_key = (_selection_fingerprint(selection), game_name)
        cache = _FOLD_CACHES.get(cache_key)
        if cache is None:
            cache = _FOLD_CACHES[cache_key] = {}
        self._fold_cache = cache
        memo = _EVENT_MEMOS.get(cache_key)
        if memo is None:
            memo = _EVENT_MEMOS[cache_key] = {}
        self._event_memo = memo

    def add_session(self, trace: RecordedTrace, session: int) -> None:
        """Replay one session locally and fold its statistics."""
        contribution = self.contribution
        selection = self._selection
        game = create_game(contribution.game_name, seed=GAME_CONTENT_SEED)
        for record in self._emulator.replay(game, trace, session=session):
            if record.event_type not in selection.by_event_type:
                continue
            fields = selection.fields_for(record.event_type)
            key = SnipTable.key_for_record(record, fields)
            slot: Slot = (record.event_type, key)
            signature = record.trace.output_signature()
            contribution.signature_weight.setdefault(slot, Counter())[
                signature
            ] += record.trace.total_cycles
            contribution.occurrences[slot] = contribution.occurrences.get(slot, 0) + 1
            contribution.cycle_sums[slot] = (
                contribution.cycle_sums.get(slot, 0.0) + record.trace.total_cycles
            )
            contribution.writes.setdefault(signature, tuple(record.trace.writes))
            contribution.events_observed += 1
        self._sessions += 1

    def add_session_events(self, events: Sequence[Event], session: int) -> None:
        """Fused fast-path fold: one pass, no emulator, no re-replay.

        Statistics-identical to :meth:`add_session` over the recorded
        form of the same events: the emulator's per-event
        ``ProfileRecord`` exists only to be torn back apart into a key
        and a trace, so this folds straight from the live replay.

        Session folds are memoised on the event-value stream: two
        devices whose sessions carry the same ``(type, values)``
        sequence replay to the same fold records (the content-seed game
        makes the trajectory a pure function of the stream), so only
        the first pays the handler replay. The cached
        :data:`SessionFold` holds the exact operands — grouped per
        slot, each group in event order — that the scalar fold feeds
        its dicts, so replaying it reproduces every float addition and
        every dict insertion bit for bit.
        """
        contribution = self.contribution
        stream = tuple(
            [
                (event.event_type.value, tuple(event.values.items()))
                for event in events
            ]
        )
        cache = self._fold_cache
        cached = cache.get(stream)
        if cached is None:
            cached = _compact_fold(self._fold_events(events))
            if len(cache) < _FOLD_CACHE_CAP:
                cache[stream] = cached
        observed, per_slot, writes_firsts = cached
        signature_weight = contribution.signature_weight
        occurrences = contribution.occurrences
        cycle_sums = contribution.cycle_sums
        writes = contribution.writes
        for slot, count, cycles, votes_groups in per_slot:
            votes = signature_weight.get(slot)
            if votes is None:
                votes = signature_weight[slot] = Counter()
            for signature, sig_cycles in votes_groups:
                total = votes.get(signature, 0)
                for value in sig_cycles:
                    total += value
                votes[signature] = total
            occurrences[slot] = occurrences.get(slot, 0) + count
            total = cycle_sums.get(slot, 0.0)
            for value in cycles:
                total += value
            cycle_sums[slot] = total
        for signature, record_writes in writes_firsts:
            if signature not in writes:
                writes[signature] = record_writes
        contribution.events_observed += observed
        self._sessions += 1

    def _fold_events(
        self, events: Sequence[Event]
    ) -> Tuple[Tuple[FoldRecord, ...], int]:
        """Replay one session and extract its fold records.

        The ``advance_engine`` → history capture → ``process``
        sequencing matches the emulator's snapshot timing exactly;
        extern key values come from the processing trace's extern reads
        (absent reads yield ``None``), mirroring ``record_inputs``.

        Per-event memo: handlers observe nothing outside the event's
        values, the state store, the screen, and seed-pure extern
        fetches, so ``(type, values, state cells, screen)`` determines
        both the trace and the mutations. Repeats — idle frame ticks
        dominate real streams — replay the recorded writes and reuse
        the cached fold record instead of running the handler.
        """
        plans = self._plans
        memo = self._event_memo
        game = fresh_game(self.contribution.game_name, seed=GAME_CONTENT_SEED)
        state = game.state
        screen = game.screen
        state_get = state.get
        records: List[FoldRecord] = []
        for event in events:
            game.advance_engine(event)
            event_type = event.event_type
            try:
                memo_key = (
                    event_type.value,
                    tuple(event.values.items()),
                    tuple((cell.value, cell.nbytes) for cell in state),
                    tuple(screen.items()),
                )
                hit = memo.get(memo_key)
            except TypeError:
                memo_key = hit = None
            if hit is not None:
                record, replay_writes = hit
                if replay_writes:
                    game.apply_outputs(replay_writes)
                if record is not None:
                    records.append(record)
                continue
            plan = plans.get(event_type)
            if plan is None:
                trace = game.process(event)
                if memo_key is not None and len(memo) < _EVENT_MEMO_CAP:
                    memo[memo_key] = (None, tuple(trace.writes))
                continue
            hist_values = {
                name: state_get(name) for kind, name in plan if kind == "hist"
            }
            trace = game.process(event)
            extern_values = None
            key_parts = []
            event_values = event.values
            for kind, name in plan:
                if kind == "event":
                    key_parts.append(event_values.get(name))
                elif kind == "hist":
                    key_parts.append(hist_values[name])
                else:
                    if extern_values is None:
                        extern_values = {
                            read.name.partition(":")[2]: read.value
                            for read in trace.reads
                            if read.category is InputCategory.EXTERN
                        }
                    key_parts.append(extern_values.get(name))
            writes_tuple = tuple(trace.writes)
            record: FoldRecord = (
                (event_type, tuple(key_parts)),
                trace.output_signature(),
                trace.total_cycles,
                writes_tuple,
            )
            records.append(record)
            if memo_key is not None and len(memo) < _EVENT_MEMO_CAP:
                memo[memo_key] = (record, writes_tuple)
        return tuple(records), len(records)

    def finish(self) -> DeviceContribution:
        """The device's upload; raises if no sessions were folded."""
        if self._sessions == 0:
            raise ProfilerError(
                f"device {self.contribution.device_id}: no sessions to contribute"
            )
        return self.contribution


def _compact_fold(fold: Tuple[Tuple[FoldRecord, ...], int]) -> SessionFold:
    """Group one session's fold records into replay-efficient form.

    Dicts preserve insertion order, so iterating the groupings walks
    slots/signatures in first-occurrence record order — exactly the
    insertion order the scalar per-record fold produces.
    """
    records, observed = fold
    per_slot: Dict[Slot, list] = {}
    writes_firsts: Dict[Tuple, Tuple[FieldWrite, ...]] = {}
    for slot, signature, total_cycles, record_writes in records:
        entry = per_slot.get(slot)
        if entry is None:
            entry = per_slot[slot] = [0, [], {}]
        entry[0] += 1
        entry[1].append(total_cycles)
        groups = entry[2]
        sig_cycles = groups.get(signature)
        if sig_cycles is None:
            sig_cycles = groups[signature] = []
        sig_cycles.append(total_cycles)
        if signature not in writes_firsts:
            writes_firsts[signature] = record_writes
    per_slot_rows = tuple(
        (
            slot,
            count,
            tuple(cycles),
            tuple((sig, tuple(vals)) for sig, vals in groups.items()),
        )
        for slot, (count, cycles, groups) in per_slot.items()
    )
    return observed, per_slot_rows, tuple(writes_firsts.items())


def build_device_contribution(
    device_id: int,
    game_name: str,
    traces: Iterable[RecordedTrace],
    selection: SelectedInputs,
) -> DeviceContribution:
    """Device-side pass: replay own sessions, emit statistics.

    The replay runs on the phone (it is the same deterministic app), so
    the cloud's emulation cost disappears — the paper's stated goal for
    the federated direction. ``traces`` is consumed exactly once, so
    generators are fine.
    """
    builder = ContributionBuilder(device_id, game_name, selection)
    for session, trace in enumerate(traces):
        builder.add_session(trace, session)
    return builder.finish()


def _note_device(seen: List[int], device_id: int, cap: int) -> None:
    """Record a distinct device id, stopping once ``cap`` are known.

    The confirmation gates only ever ask "did at least *cap* distinct
    devices confirm this?", so tracking the first ``cap`` distinct ids
    answers them exactly while keeping per-slot memory O(cap) — a full
    id set would grow with the fleet (10^6 devices x live slots was the
    aggregator's memory wall).
    """
    if len(seen) < cap and device_id not in seen:
        seen.append(device_id)


class FederatedAggregator:
    """Cloud-side merge: many devices' statistics -> one gated table.

    Memory is bounded by the number of distinct slots (game content),
    never by the number of devices merged: per-slot device support is
    tracked only up to the confirmation threshold.
    """

    def __init__(self, selection: SelectedInputs, config: SnipConfig) -> None:
        self.selection = selection
        self.config = config
        self._votes: Dict[Slot, Counter] = defaultdict(Counter)
        #: First MIN_CONFIRMING_DEVICES distinct confirming ids per slot.
        self._confirming: Dict[Slot, List[int]] = defaultdict(list)
        #: First two distinct contributing ids fleet-wide.
        self._contributors: List[int] = []
        self._occurrences: Dict[Slot, int] = defaultdict(int)
        self._cycle_sums: Dict[Slot, float] = defaultdict(float)
        self._writes: Dict[Tuple, Tuple[FieldWrite, ...]] = {}
        self._contributions = 0

    @property
    def contribution_count(self) -> int:
        """How many device uploads have been merged."""
        return self._contributions

    def merge(self, contribution: DeviceContribution) -> None:
        """Fold one device's statistics into the fleet aggregate."""
        for slot, votes in contribution.signature_weight.items():
            self._votes[slot].update(votes)
            _note_device(
                self._confirming[slot],
                contribution.device_id,
                MIN_CONFIRMING_DEVICES,
            )
            self._occurrences[slot] += contribution.occurrences[slot]
            self._cycle_sums[slot] += contribution.cycle_sums[slot]
        if contribution.signature_weight:
            _note_device(self._contributors, contribution.device_id, 2)
        for signature, writes in contribution.writes.items():
            self._writes.setdefault(signature, writes)
        self._contributions += 1

    def absorb(self, other: "FederatedAggregator") -> None:
        """Merge another aggregator's partial state into this one.

        Used to combine per-range partial reductions; ``other`` must
        cover device ids after this aggregator's (left-to-right merge
        order, matching the canonical device order).
        """
        for slot, votes in other._votes.items():
            self._votes[slot].update(votes)
            confirming = self._confirming[slot]
            for device_id in other._confirming.get(slot, ()):
                _note_device(confirming, device_id, MIN_CONFIRMING_DEVICES)
            self._occurrences[slot] += other._occurrences[slot]
            self._cycle_sums[slot] += other._cycle_sums[slot]
        for device_id in other._contributors:
            _note_device(self._contributors, device_id, 2)
        for signature, writes in other._writes.items():
            self._writes.setdefault(signature, writes)
        self._contributions += other._contributions

    def build_table(self) -> SnipTable:
        """Materialise the gated table from the fleet aggregate.

        The support gate counts distinct *devices* when more than one
        contributed, otherwise raw occurrences — the federated analogue
        of the per-profile session gate.
        """
        if not self._votes:
            raise ProfilerError("no contributions merged yet")
        multi_device = len(self._contributors) >= 2
        table = SnipTable(self.selection)
        for slot, votes in self._votes.items():
            if multi_device and len(self._confirming[slot]) >= MIN_CONFIRMING_DEVICES:
                pass  # fleet-confirmed context
            elif self._occurrences[slot] < self.config.table_min_count:
                continue
            majority_signature, majority_weight = votes.most_common(1)[0]
            group_weight = sum(votes.values())
            if majority_weight / group_weight < self.config.table_consistency:
                continue
            event_type, key = slot
            table.install_entry(
                event_type,
                key,
                TableEntry(
                    writes=self._writes[majority_signature],
                    avg_cycles=self._cycle_sums[slot] / self._occurrences[slot],
                    profile_weight=float(majority_weight),
                ),
            )
        return table


def federate_contributions(
    contributions: Sequence[DeviceContribution],
    selection: SelectedInputs,
    config: SnipConfig,
) -> Tuple[SnipTable, int]:
    """Cloud-side merge of already-computed device statistics.

    This is the entry point the fleet engine uses: workers return
    :class:`DeviceContribution` payloads from their shards and the
    reducer hands them here. Contributions are merged in device-id
    order so the built table is identical however the shards were
    scheduled.
    """
    aggregator = FederatedAggregator(selection, config)
    uplink = 0
    for contribution in sorted(contributions, key=lambda c: c.device_id):
        uplink += contribution.upload_bytes
        aggregator.merge(contribution)
    return aggregator.build_table(), uplink


def federate(
    game_name: str,
    per_device_traces: Dict[int, List[RecordedTrace]],
    selection: SelectedInputs,
    config: SnipConfig,
) -> Tuple[SnipTable, int]:
    """End-to-end federation: devices compute, cloud merges.

    Returns the fleet table and the total uplink bytes (the quantity the
    federated design minimises against shipping raw profiles).
    """
    contributions = [
        build_device_contribution(device_id, game_name, traces, selection)
        for device_id, traces in per_device_traces.items()
    ]
    return federate_contributions(contributions, selection, config)
