"""The cloud profiler pipeline (paper Fig. 10, Sec. V-B).

Record events on the device -> upload -> replay on the emulator ->
dump per-event I/O -> PFI -> necessary inputs -> build the SNIP table ->
ship it back over the air. :class:`CloudProfiler` glues those stages and
:class:`SnipPackage` is the artifact that returns to the phone, carrying
the size/overhead accounting the paper reports in Sec. VII-C.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

from repro.android.emulator import Emulator, ProfileRecord
from repro.android.tracing import RecordedTrace
from repro.core.config import SnipConfig
from repro.core.overrides import DeveloperOverrides
from repro.core.package_cache import (
    PackageCache,
    default_package_cache,
    package_digest,
)
from repro.core.pfi import PfiAnalysis, run_pfi
from repro.core.selection import SelectedInputs, select_necessary_inputs
from repro.core.table import SnipTable
from repro.errors import ProfilerError
from repro.games.registry import GAME_CONTENT_SEED, create_game
from repro.users.tracegen import generate_trace

#: Calibration constant for the Sec. VII-C backend-cost estimate: the
#: paper reports ~2 days on a 48-core Xeon to process a 2-minute trace.
BACKEND_SECONDS_PER_EVENT = 86_400.0 * 2 / 9_000.0


@dataclass
class SnipPackage:
    """The over-the-air update sent back to the device."""

    game_name: str
    table: SnipTable
    selection: SelectedInputs
    analysis: PfiAnalysis
    profile_events: int
    uplink_bytes: int       # what the phone sent to the cloud
    full_record_bytes: int  # what a naive table would have stored
    table_bytes: int        # what actually ships back

    @property
    def shrink_factor(self) -> float:
        """How much smaller the shipped table is than the naive record
        store (the paper's 100s-of-GB -> ~600 MB point)."""
        if self.table_bytes <= 0:
            return float("inf")
        return self.full_record_bytes / self.table_bytes

    @property
    def backend_seconds(self) -> float:
        """Estimated cloud processing time (Sec. VII-C scale model)."""
        return self.profile_events * BACKEND_SECONDS_PER_EVENT


class CloudProfiler:
    """End-to-end: traces in, SNIP package out."""

    def __init__(
        self,
        config: Optional[SnipConfig] = None,
        overrides: Optional[DeveloperOverrides] = None,
        cache: Union[PackageCache, None, str] = "auto",
    ) -> None:
        """``cache`` controls package reuse for the sessions entry point.

        ``"auto"`` (the default) uses the process-default on-disk cache
        (honouring the ``REPRO_SNIP_NO_CACHE`` opt-out), ``None``
        disables caching for this profiler, and a
        :class:`~repro.core.package_cache.PackageCache` pins a specific
        store (tests and the CLI use this).
        """
        self.config = config or SnipConfig()
        self.overrides = overrides or DeveloperOverrides()
        self.cache = default_package_cache() if cache == "auto" else (cache or None)
        self.emulator = Emulator(verify=False)

    # -- stage wrappers ------------------------------------------------------

    def replay_traces(
        self, game_name: str, traces: Sequence[RecordedTrace]
    ) -> List[ProfileRecord]:
        """Replay device recordings into profile records."""
        if not traces:
            raise ProfilerError("no traces supplied to the profiler")
        records: List[ProfileRecord] = []
        for session, trace in enumerate(traces):
            game = create_game(game_name, seed=GAME_CONTENT_SEED)
            records.extend(self.emulator.replay(game, trace, session=session))
        return records

    def analyze(self, records: Sequence[ProfileRecord]) -> PfiAnalysis:
        """Run PFI over a replayed profile."""
        return run_pfi(records, self.config)

    def select(self, analysis: PfiAnalysis) -> SelectedInputs:
        """Pick the necessary inputs (gated-coverage hill climb)."""
        return select_necessary_inputs(analysis, self.config, self.overrides)

    # -- the whole pipeline -----------------------------------------------------

    def build_package(
        self,
        game_name: str,
        traces: Sequence[RecordedTrace],
    ) -> SnipPackage:
        """Record -> replay -> PFI -> select -> table, with accounting."""
        records = self.replay_traces(game_name, traces)
        analysis = self.analyze(records)
        selection = self.select(analysis)
        table = SnipTable.build(records, selection, self.config)
        full_record_bytes = 0
        for event_type, profile in analysis.profiles.items():
            width = sum(info.nbytes for info in profile.universe)
            full_record_bytes += width * len(profile.records)
        return SnipPackage(
            game_name=game_name,
            table=table,
            selection=selection,
            analysis=analysis,
            profile_events=len(records),
            uplink_bytes=sum(trace.uplink_bytes for trace in traces),
            full_record_bytes=full_record_bytes,
            table_bytes=table.total_bytes,
        )

    def build_package_from_sessions(
        self,
        game_name: str,
        seeds: Sequence[int],
        duration_s: float,
    ) -> SnipPackage:
        """Convenience: synthesize device recordings, then build.

        This entry point is a pure function of ``(game_name, config,
        overrides, seeds, duration_s)`` plus the pipeline code, so the
        result is served from the content-addressed package cache when
        one is configured; a hit skips recording, replay, and PFI
        entirely and returns an identical package.
        """
        key = None
        if self.cache is not None:
            key = package_digest(
                game_name, self.config, seeds, duration_s, self.overrides
            )
            cached = self.cache.load(key)
            if isinstance(cached, SnipPackage) and cached.game_name == game_name:
                return cached
        traces = [
            generate_trace(game_name, seed=seed, duration_s=duration_s)
            for seed in seeds
        ]
        package = self.build_package(game_name, traces)
        if key is not None:
            self.cache.store(key, package)
        return package
