"""Escape hatch for the columnar device-simulation fast path.

The batched session pipeline (columnar trace assembly, batched probes,
columnar energy ledgers) is byte-identical to the scalar reference path
by construction and by test, but an escape hatch keeps the scalar code
one flag away: ``repro-snip fleet --no-batch`` or
``REPRO_SNIP_NO_BATCH=1`` routes every device through the in-source
``*_reference`` implementations.

The toggle deliberately rides on an environment variable rather than a
:class:`~repro.fleet.spec.FleetSpec` field: it must not perturb spec
fingerprints (reports are byte-identical either way), and worker
processes inherit the parent's environment, so one flag covers every
executor kind.
"""

from __future__ import annotations

import os

#: Set to any value other than ``""``/``"0"`` to disable the batched
#: fast path and run the scalar reference implementations everywhere.
NO_BATCH_ENV = "REPRO_SNIP_NO_BATCH"


#: Resolved once at import: the flag selects between two byte-identical
#: implementations, so it cannot leak nondeterminism into any result
#: (mirrors the package-cache kill switch in
#: :mod:`repro.core.package_cache`). Worker processes re-import this
#: module and therefore re-read the inherited environment.
_BATCHING_DISABLED = os.environ.get(NO_BATCH_ENV, "") not in ("", "0")


def batching_enabled() -> bool:
    """Whether the columnar fast path is active."""
    return not _BATCHING_DISABLED


def disable_batching() -> None:
    """Switch every pipeline to the scalar reference path.

    Exposed for the CLI's ``--no-batch`` flag; mutating the environment
    as well as module state makes the choice inherit into worker
    processes spawned by the fleet executors.
    """
    global _BATCHING_DISABLED
    _BATCHING_DISABLED = True
    os.environ[NO_BATCH_ENV] = "1"


def enable_batching() -> None:
    """Restore the batched fast path after :func:`disable_batching`.

    Used by the equivalence benchmarks and tests, which run the scalar
    reference in-process and must put the toggle back afterwards.
    """
    global _BATCHING_DISABLED
    _BATCHING_DISABLED = False
    os.environ.pop(NO_BATCH_ENV, None)
