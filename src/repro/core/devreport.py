"""Developer-intervention report (paper Fig. 10, Option 1).

During app testing, "the necessary input fields are mapped to the source
code's variables ... and the app developers can fine tune the necessary
inputs by adding more necessary inputs and/or marking Out.Temp variables
that can tolerate errors". This module renders that feedback artifact:
for every event type, which input locations PFI kept (with importance,
category, and width), which heavy locations it dropped, and which output
fields are Out.Temp candidates for error tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.report import pct, render_table
from repro.android.events import EventType
from repro.core.pfi import PfiAnalysis
from repro.core.selection import SelectedInputs
from repro.games.base import OutputCategory
from repro.units import format_bytes


@dataclass(frozen=True)
class FieldVerdict:
    """One input location's fate in the selection."""

    name: str
    category: str
    nbytes: int
    importance: float
    kept: bool


@dataclass
class DeveloperReport:
    """The per-event-type feedback shipped to the app developers."""

    game_name: str
    verdicts: Dict[EventType, List[FieldVerdict]]
    temp_output_fields: Dict[EventType, List[str]]

    def kept_fields(self, event_type: EventType) -> List[FieldVerdict]:
        """The necessary inputs for one handler."""
        return [v for v in self.verdicts.get(event_type, []) if v.kept]

    def dropped_fields(self, event_type: EventType) -> List[FieldVerdict]:
        """The trimmed inputs for one handler (review candidates)."""
        return [v for v in self.verdicts.get(event_type, []) if not v.kept]

    def to_text(self) -> str:
        """Render the full report."""
        sections = [f"Developer report for {self.game_name!r}"]
        for event_type in sorted(self.verdicts, key=lambda t: t.value):
            rows = [
                [
                    "KEEP" if verdict.kept else "drop",
                    verdict.name,
                    verdict.category,
                    format_bytes(verdict.nbytes),
                    pct(verdict.importance, 2),
                ]
                for verdict in sorted(
                    self.verdicts[event_type],
                    key=lambda v: (not v.kept, -v.importance),
                )
            ]
            table = render_table(
                ["verdict", "input location", "category", "width", "importance"],
                rows,
            )
            temps = self.temp_output_fields.get(event_type, [])
            temp_note = (
                "out.temp candidates for error tolerance: " + ", ".join(temps)
                if temps
                else "no out.temp outputs observed"
            )
            sections.append(
                f"\n== handler: {event_type.value} ==\n{table}\n{temp_note}"
            )
        return "\n".join(sections)


def build_developer_report(
    game_name: str,
    analysis: PfiAnalysis,
    selection: SelectedInputs,
) -> DeveloperReport:
    """Assemble the Option-1 feedback from an analysis + selection."""
    verdicts: Dict[EventType, List[FieldVerdict]] = {}
    temp_fields: Dict[EventType, List[str]] = {}
    for event_type, profile in analysis.profiles.items():
        kept_names = {
            info.name for info in selection.fields_for(event_type)
        }
        importance_of = {
            imp.name: imp.importance for imp in analysis.importances[event_type]
        }
        verdicts[event_type] = [
            FieldVerdict(
                name=info.name,
                category=info.category.value,
                nbytes=info.nbytes,
                importance=importance_of.get(info.name, 0.0),
                kept=info.name in kept_names,
            )
            for info in profile.universe
        ]
        seen_temp: List[str] = []
        for record in profile.records:
            for write in record.trace.writes_in(OutputCategory.TEMP):
                if write.name not in seen_temp:
                    seen_temp.append(write.name)
        temp_fields[event_type] = seen_temp
    return DeveloperReport(
        game_name=game_name, verdicts=verdicts, temp_output_fields=temp_fields
    )
