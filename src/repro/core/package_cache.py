"""Content-addressed on-disk cache of cloud-profile packages.

Profiling the same ``(game, config, seeds, duration)`` combination is a
pure function of its inputs plus the pipeline code, so every fig
driver, fleet shard, and scheme ``prepare`` that asks for the same
package can reuse one profiling run across processes. The cache key is
a digest over exactly those inputs *and* a digest of the installed
``repro`` sources — any edit to the package invalidates every entry, so
a stale cache can never mask a code change.

Entries are whole pickled :class:`~repro.core.profiler.SnipPackage`
objects written atomically (temp file + rename), so concurrent fleet
shards racing on the same key at worst both profile and one rename
wins; readers never observe a half-written package.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Optional, Sequence

from repro.core.config import SnipConfig
from repro.core.overrides import DeveloperOverrides
from repro.core.serialization import package_from_bytes, package_to_bytes
from repro.errors import CacheError, MemoizationError

#: Bump on incompatible changes to the cache entry layout itself (the
#: pipeline code is content-hashed separately, see :func:`code_digest`).
CACHE_FORMAT_VERSION = 1

#: Environment variable overriding the cache directory.
CACHE_DIR_ENV = "REPRO_SNIP_CACHE_DIR"

#: Environment variable disabling the cache entirely (any non-empty value).
CACHE_DISABLE_ENV = "REPRO_SNIP_NO_CACHE"

_CODE_DIGEST: Optional[str] = None


def code_digest() -> str:
    """Digest of every installed ``repro`` source file (memoized).

    This is the "code version" part of the cache key: rather than
    trusting a hand-bumped constant, the key hashes the sources, so any
    edit anywhere in the package — profiler, PFI, games, SoC model —
    invalidates all cached packages automatically.
    """
    global _CODE_DIGEST
    if _CODE_DIGEST is None:
        package_root = Path(__file__).resolve().parent.parent
        digest = hashlib.blake2b(digest_size=16)
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode("utf-8"))
            digest.update(path.read_bytes())
        _CODE_DIGEST = digest.hexdigest()
    return _CODE_DIGEST


def _overrides_payload(overrides: Optional[DeveloperOverrides]) -> dict:
    """Developer overrides as a canonical, JSON-stable structure."""
    if overrides is None:
        overrides = DeveloperOverrides()
    return {
        "forced_fields": {
            event_type.value: sorted(fields)
            for event_type, fields in sorted(
                overrides.forced_fields.items(), key=lambda item: item[0].value
            )
            if fields
        },
        "forced_everywhere": sorted(overrides.forced_everywhere),
        "tolerate_temp_errors": overrides.tolerate_temp_errors,
    }


def package_digest(
    game_name: str,
    config: SnipConfig,
    seeds: Sequence[int],
    duration_s: float,
    overrides: Optional[DeveloperOverrides] = None,
) -> str:
    """Cache key for one profiling run: inputs plus code version."""
    payload = {
        "format_version": CACHE_FORMAT_VERSION,
        "code": code_digest(),
        "game": game_name,
        "config": asdict(config),
        "seeds": [int(seed) for seed in seeds],
        "duration_s": float(duration_s),
        "overrides": _overrides_payload(overrides),
    }
    canonical = json.dumps(payload, sort_keys=True)
    return hashlib.blake2b(canonical.encode("utf-8"), digest_size=16).hexdigest()


#: Sidecar file recording how many corrupt entries were ever evicted;
#: a rising count is the signal that something is truncating writes.
EVICTIONS_NAME = "corrupt_evictions.count"


@dataclass(frozen=True)
class CacheStats:
    """What ``repro-snip cache stats`` reports."""

    root: str
    entries: int
    total_bytes: int
    corrupt_evictions: int = 0

    def to_dict(self) -> dict:
        """JSON form for ``cache stats --format json``."""
        return {
            "root": self.root,
            "entries": self.entries,
            "total_bytes": self.total_bytes,
            "corrupt_evictions": self.corrupt_evictions,
        }


@dataclass(frozen=True)
class ClearStats:
    """What one destructive cache sweep reclaimed."""

    entries: int
    bytes_reclaimed: int


class PackageCache:
    """Directory of pickled packages keyed by :func:`package_digest`."""

    def __init__(self, root: Optional[os.PathLike] = None) -> None:
        if root is None:
            root = default_cache_root()
        self.root = Path(root)

    def path_for(self, key: str) -> Path:
        """Where one key's package lives (whether or not it exists)."""
        return self.root / f"{key}.pkg"

    def load(self, key: str):
        """The cached package for a key, or ``None`` on a miss.

        A corrupt or truncated entry counts as a miss and is *evicted*
        (and counted in :attr:`CacheStats.corrupt_evictions`) instead of
        raising: the caller re-profiles and overwrites it, which is
        always safe because entries are pure functions of their key.
        """
        path = self.path_for(key)
        try:
            with open(path, "rb") as handle:
                return package_from_bytes(handle.read())
        except FileNotFoundError:
            return None
        except (OSError, MemoizationError):
            try:
                path.unlink()
            except OSError:
                pass
            self._count_eviction()
            return None

    def _count_eviction(self) -> None:
        """Bump the persistent corrupt-eviction counter (best effort)."""
        counter = self.root / EVICTIONS_NAME
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            count = self.corrupt_evictions() + 1
            fd, staged = tempfile.mkstemp(
                prefix=f".{EVICTIONS_NAME}.", suffix=".tmp", dir=self.root
            )
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(f"{count}\n")
            os.replace(staged, counter)
        except OSError:
            # Diagnostics must never turn an evicted miss into a crash.
            pass

    def corrupt_evictions(self) -> int:
        """How many corrupt entries this cache directory ever evicted."""
        try:
            return int((self.root / EVICTIONS_NAME).read_text().strip() or 0)
        except (OSError, ValueError):
            return 0

    def store(self, key: str, package) -> Path:
        """Atomically persist a package under its key; returns the path."""
        path = self.path_for(key)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            fd, staged = tempfile.mkstemp(
                prefix=f".{key}.", suffix=".tmp", dir=self.root
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(package_to_bytes(package))
                os.replace(staged, path)
            except BaseException:
                try:
                    os.unlink(staged)
                except OSError:
                    pass
                raise
        except OSError as exc:
            raise CacheError(f"cannot write package cache entry {path}: {exc}") from exc
        return path

    def stats(self) -> CacheStats:
        """Entry count, on-disk footprint, and eviction history."""
        entries = 0
        total_bytes = 0
        if self.root.is_dir():
            for path in self.root.glob("*.pkg"):
                try:
                    total_bytes += path.stat().st_size
                except OSError:
                    continue
                entries += 1
        return CacheStats(
            root=str(self.root),
            entries=entries,
            total_bytes=total_bytes,
            corrupt_evictions=self.corrupt_evictions(),
        )

    def remove(self, key: str) -> Optional[int]:
        """Delete one entry; returns the bytes reclaimed, ``None`` on a
        miss.

        This is the unit of size accounting that ``cache clear`` and
        the registry's ``gc`` both report through.
        """
        path = self.path_for(key)
        try:
            size = path.stat().st_size
            path.unlink()
        except OSError:
            return None
        return size

    def clear(self) -> ClearStats:
        """Delete every entry; reports entries removed and bytes freed."""
        removed = 0
        reclaimed = 0
        if self.root.is_dir():
            for path in list(self.root.glob("*.pkg")):
                freed = self.remove(path.stem)
                if freed is None:
                    continue
                removed += 1
                reclaimed += freed
        return ClearStats(entries=removed, bytes_reclaimed=reclaimed)


def default_cache_root() -> Path:
    """Cache directory: ``$REPRO_SNIP_CACHE_DIR`` or ``~/.cache/repro-snip``."""
    # Cached packages are content-addressed, so *where* they live never
    # affects results — reading the environment here is configuration,
    # not a determinism hazard.
    override = os.environ.get(CACHE_DIR_ENV)  # lint: ignore[det-env-read]
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-snip"


def default_package_cache() -> Optional[PackageCache]:
    """The process-default cache, or ``None`` when opted out via env."""
    # Opting out changes only how often the profiler recomputes, never
    # what it computes, so this read cannot make results irreproducible.
    if os.environ.get(CACHE_DISABLE_ENV):  # lint: ignore[det-env-read]
        return None
    return PackageCache()
