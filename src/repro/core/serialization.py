"""Serialization of SNIP artifacts: the over-the-air update format.

The paper ships the PFI lookup table back to the phone "as an over-the-
air update". This module defines that wire format: a plain-JSON document
carrying the necessary-input selection and the gated table entries, plus
loaders that reconstruct live objects. Everything is versioned and
validated so a device can reject a malformed or incompatible update.
"""

from __future__ import annotations

import json
import pickle
import struct
from collections.abc import Mapping
from dataclasses import replace
from typing import Any, Dict, List, Optional, Tuple

from repro.android.events import EventType
from repro.core.fields import FieldInfo
from repro.core.selection import SelectedInputs
from repro.core.table import SnipTable, TableEntry
from repro.errors import MemoizationError
from repro.games.base import FieldWrite, InputCategory, OutputCategory

#: Wire-format version; bumped on incompatible changes.
FORMAT_VERSION = 1


def _encode_value(value: Any) -> Dict[str, Any]:
    """Encode one field value, preserving tuple-ness through JSON."""
    if isinstance(value, tuple):
        return {"t": "tuple", "v": [_encode_value(item) for item in value]}
    if isinstance(value, (int, float, str, bool)) or value is None:
        return {"t": "scalar", "v": value}
    raise MemoizationError(f"unserialisable value of type {type(value).__name__}")


def _decode_value(payload: Dict[str, Any]) -> Any:
    kind = payload.get("t")
    if kind == "tuple":
        return tuple(_decode_value(item) for item in payload["v"])
    if kind == "scalar":
        return payload["v"]
    raise MemoizationError(f"malformed value payload: {payload!r}")


def _encode_write(write: FieldWrite) -> Dict[str, Any]:
    return {
        "name": write.name,
        "category": write.category.value,
        "value": _encode_value(write.value),
        "nbytes": write.nbytes,
        "changed": write.changed,
    }


def _decode_write(payload: Dict[str, Any]) -> FieldWrite:
    return FieldWrite(
        name=payload["name"],
        category=OutputCategory(payload["category"]),
        value=_decode_value(payload["value"]),
        nbytes=payload["nbytes"],
        changed=payload["changed"],
    )


def selection_to_dict(selection: SelectedInputs) -> Dict[str, Any]:
    """The necessary-input selection as a plain dict."""
    return {
        event_type.value: [
            {"name": info.name, "category": info.category.value,
             "nbytes": info.nbytes}
            for info in fields
        ]
        for event_type, fields in selection.by_event_type.items()
    }


def selection_from_dict(payload: Dict[str, Any]) -> SelectedInputs:
    """Inverse of :func:`selection_to_dict`."""
    selection = SelectedInputs()
    for type_name, fields in payload.items():
        selection.by_event_type[EventType(type_name)] = [
            FieldInfo(
                name=field["name"],
                category=InputCategory(field["category"]),
                nbytes=field["nbytes"],
            )
            for field in fields
        ]
    return selection


def table_to_dict(table: SnipTable) -> Dict[str, Any]:
    """The full OTA update document for one game's table."""
    entries: Dict[str, List[Dict[str, Any]]] = {}
    for event_type in table.event_types():
        rows = []
        for key, entry in table._entries[event_type].items():
            rows.append(
                {
                    "key": [_encode_value(value) for value in key],
                    "writes": [_encode_write(write) for write in entry.writes],
                    "avg_cycles": entry.avg_cycles,
                    "profile_weight": entry.profile_weight,
                }
            )
        entries[event_type.value] = rows
    return {
        "format_version": FORMAT_VERSION,
        "selection": selection_to_dict(table.selection),
        "entries": entries,
    }


def table_from_dict(payload: Dict[str, Any]) -> SnipTable:
    """Reconstruct a live table from an OTA document."""
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise MemoizationError(
            f"unsupported OTA format version {version!r} "
            f"(device supports {FORMAT_VERSION})"
        )
    try:
        selection = selection_from_dict(payload["selection"])
        table = SnipTable(selection)
        for type_name, rows in payload["entries"].items():
            event_type = EventType(type_name)
            for row in rows:
                key: Tuple = tuple(_decode_value(value) for value in row["key"])
                table.install_entry(
                    event_type,
                    key,
                    TableEntry(
                        writes=tuple(_decode_write(w) for w in row["writes"]),
                        avg_cycles=row["avg_cycles"],
                        profile_weight=row["profile_weight"],
                    ),
                )
        return table
    except (KeyError, ValueError, TypeError) as exc:
        raise MemoizationError(f"malformed OTA table document: {exc}") from exc


def dump_table(table: SnipTable, path: str) -> int:
    """Write the OTA document to ``path``; returns bytes written."""
    document = json.dumps(table_to_dict(table), separators=(",", ":"))
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(document)
    return len(document)


def load_table(path: str) -> SnipTable:
    """Load an OTA document from ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        return table_from_dict(json.load(handle))


# -- cloud-side package wire format ----------------------------------------
#
# Unlike the OTA table document above (a versioned JSON contract a
# *device* must be able to validate), whole SnipPackages only ever move
# between trusted cloud-side processes — the profiler's on-disk cache
# and fleet workers — so they use pickle: the analysis half of a
# package (per-event-type profiles, fitted forests) has no JSON form
# and needs none.
#
# The payload is framed in two segments: a *light* one (table,
# selection, importances, models, accounting) and a *heavy* one (the
# per-event-type profiles, which drag every replayed ProfileRecord
# along). Most cache consumers — scheme ``prepare``, the fleet engine,
# the runtime benches — only ever touch the light half, so the heavy
# segment is deserialized lazily on first profile access.

_PACKAGE_MAGIC = b"SNIPPKG1"
_PACKAGE_HEADER = struct.Struct("<QQ")
_PICKLE_ERRORS = (
    pickle.UnpicklingError, EOFError, AttributeError, ImportError,
    IndexError, ValueError, TypeError, struct.error,
)


class _LazyProfiles(Mapping):
    """``analysis.profiles`` backed by a still-pickled heavy segment.

    Behaves as a read-only mapping; the payload is unpickled once, on
    first access. Re-pickling (fleet workers ship packages to their
    shard processes) forwards the raw payload when still unloaded, so
    laziness survives the process hop.
    """

    def __init__(self, payload: bytes) -> None:
        self._payload = payload
        self._profiles: Optional[Dict] = None

    def _load(self) -> Dict:
        if self._profiles is None:
            try:
                self._profiles = pickle.loads(self._payload)
            except _PICKLE_ERRORS as exc:
                raise MemoizationError(
                    f"malformed package profiles segment: {exc}"
                ) from exc
            self._payload = b""
        return self._profiles

    def __getitem__(self, key):
        return self._load()[key]

    def __iter__(self):
        return iter(self._load())

    def __len__(self) -> int:
        return len(self._load())

    def __reduce__(self):
        if self._profiles is not None:
            return (dict, (self._profiles,))
        return (self.__class__, (self._payload,))


def package_to_bytes(package: Any) -> bytes:
    """Serialize a :class:`~repro.core.profiler.SnipPackage`."""
    heavy = pickle.dumps(
        dict(package.analysis.profiles), protocol=pickle.HIGHEST_PROTOCOL
    )
    light_package = replace(
        package, analysis=replace(package.analysis, profiles={})
    )
    light = pickle.dumps(light_package, protocol=pickle.HIGHEST_PROTOCOL)
    return (
        _PACKAGE_MAGIC
        + _PACKAGE_HEADER.pack(len(light), len(heavy))
        + light
        + heavy
    )


def package_from_bytes(payload: bytes) -> Any:
    """Inverse of :func:`package_to_bytes`.

    Raises :class:`MemoizationError` on malformed payloads so cache
    callers can treat corruption as a plain miss. The profiles segment
    is validated for length here but only unpickled on first access; a
    bit-corrupted (not truncated) heavy segment therefore surfaces as
    a :class:`MemoizationError` at that access instead.
    """
    header_end = len(_PACKAGE_MAGIC) + _PACKAGE_HEADER.size
    if not payload.startswith(_PACKAGE_MAGIC) or len(payload) < header_end:
        raise MemoizationError("malformed package payload: bad header")
    light_len, heavy_len = _PACKAGE_HEADER.unpack_from(
        payload, len(_PACKAGE_MAGIC)
    )
    if len(payload) != header_end + light_len + heavy_len:
        raise MemoizationError("malformed package payload: truncated")
    try:
        package = pickle.loads(payload[header_end:header_end + light_len])
    except _PICKLE_ERRORS as exc:
        raise MemoizationError(f"malformed package payload: {exc}") from exc
    package.analysis.profiles = _LazyProfiles(payload[header_end + light_len:])
    return package
