"""Serialization of SNIP artifacts: the over-the-air update format.

The paper ships the PFI lookup table back to the phone "as an over-the-
air update". This module defines that wire format: a plain-JSON document
carrying the necessary-input selection and the gated table entries, plus
loaders that reconstruct live objects. Everything is versioned and
validated so a device can reject a malformed or incompatible update.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Tuple

from repro.android.events import EventType
from repro.core.fields import FieldInfo
from repro.core.selection import SelectedInputs
from repro.core.table import SnipTable, TableEntry
from repro.errors import MemoizationError
from repro.games.base import FieldWrite, InputCategory, OutputCategory

#: Wire-format version; bumped on incompatible changes.
FORMAT_VERSION = 1


def _encode_value(value: Any) -> Dict[str, Any]:
    """Encode one field value, preserving tuple-ness through JSON."""
    if isinstance(value, tuple):
        return {"t": "tuple", "v": [_encode_value(item) for item in value]}
    if isinstance(value, (int, float, str, bool)) or value is None:
        return {"t": "scalar", "v": value}
    raise MemoizationError(f"unserialisable value of type {type(value).__name__}")


def _decode_value(payload: Dict[str, Any]) -> Any:
    kind = payload.get("t")
    if kind == "tuple":
        return tuple(_decode_value(item) for item in payload["v"])
    if kind == "scalar":
        return payload["v"]
    raise MemoizationError(f"malformed value payload: {payload!r}")


def _encode_write(write: FieldWrite) -> Dict[str, Any]:
    return {
        "name": write.name,
        "category": write.category.value,
        "value": _encode_value(write.value),
        "nbytes": write.nbytes,
        "changed": write.changed,
    }


def _decode_write(payload: Dict[str, Any]) -> FieldWrite:
    return FieldWrite(
        name=payload["name"],
        category=OutputCategory(payload["category"]),
        value=_decode_value(payload["value"]),
        nbytes=payload["nbytes"],
        changed=payload["changed"],
    )


def selection_to_dict(selection: SelectedInputs) -> Dict[str, Any]:
    """The necessary-input selection as a plain dict."""
    return {
        event_type.value: [
            {"name": info.name, "category": info.category.value,
             "nbytes": info.nbytes}
            for info in fields
        ]
        for event_type, fields in selection.by_event_type.items()
    }


def selection_from_dict(payload: Dict[str, Any]) -> SelectedInputs:
    """Inverse of :func:`selection_to_dict`."""
    selection = SelectedInputs()
    for type_name, fields in payload.items():
        selection.by_event_type[EventType(type_name)] = [
            FieldInfo(
                name=field["name"],
                category=InputCategory(field["category"]),
                nbytes=field["nbytes"],
            )
            for field in fields
        ]
    return selection


def table_to_dict(table: SnipTable) -> Dict[str, Any]:
    """The full OTA update document for one game's table."""
    entries: Dict[str, List[Dict[str, Any]]] = {}
    for event_type in table.event_types():
        rows = []
        for key, entry in table._entries[event_type].items():
            rows.append(
                {
                    "key": [_encode_value(value) for value in key],
                    "writes": [_encode_write(write) for write in entry.writes],
                    "avg_cycles": entry.avg_cycles,
                    "profile_weight": entry.profile_weight,
                }
            )
        entries[event_type.value] = rows
    return {
        "format_version": FORMAT_VERSION,
        "selection": selection_to_dict(table.selection),
        "entries": entries,
    }


def table_from_dict(payload: Dict[str, Any]) -> SnipTable:
    """Reconstruct a live table from an OTA document."""
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise MemoizationError(
            f"unsupported OTA format version {version!r} "
            f"(device supports {FORMAT_VERSION})"
        )
    try:
        selection = selection_from_dict(payload["selection"])
        table = SnipTable(selection)
        for type_name, rows in payload["entries"].items():
            event_type = EventType(type_name)
            for row in rows:
                key: Tuple = tuple(_decode_value(value) for value in row["key"])
                table.install_entry(
                    event_type,
                    key,
                    TableEntry(
                        writes=tuple(_decode_write(w) for w in row["writes"]),
                        avg_cycles=row["avg_cycles"],
                        profile_weight=row["profile_weight"],
                    ),
                )
        return table
    except (KeyError, ValueError, TypeError) as exc:
        raise MemoizationError(f"malformed OTA table document: {exc}") from exc


def dump_table(table: SnipTable, path: str) -> int:
    """Write the OTA document to ``path``; returns bytes written."""
    document = json.dumps(table_to_dict(table), separators=(",", ":"))
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(document)
    return len(document)


def load_table(path: str) -> SnipTable:
    """Load an OTA document from ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        return table_from_dict(json.load(handle))
