"""The shipped SNIP lookup table.

Keys each event type on its *necessary inputs* (the PFI selection) and
stores, per key, the cycle-majority output writes plus the average
handler cost — everything the runtime needs to short-circuit an event
and everything the accounting needs to credit the savings.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.android.emulator import ProfileRecord
from repro.android.events import EventType
from repro.core.config import SnipConfig
from repro.core.fields import FieldInfo, record_inputs
from repro.core.selection import SelectedInputs
from repro.errors import MemoizationError
from repro.games.base import FieldWrite
from repro.memo.stats import total_output_bytes


@dataclass(frozen=True)
class TableEntry:
    """One key's stored prediction."""

    writes: Tuple[FieldWrite, ...]
    avg_cycles: float       # mean handler cycles this key's events took
    profile_weight: float   # cycle mass behind this entry (confidence)


class SnipTable:
    """Necessary-input-keyed lookup table for one game."""

    def __init__(self, selection: SelectedInputs) -> None:
        self.selection = selection
        self._entries: Dict[EventType, Dict[Tuple, TableEntry]] = defaultdict(dict)

    # -- construction -------------------------------------------------------

    @classmethod
    def build(
        cls,
        records: Sequence[ProfileRecord],
        selection: SelectedInputs,
        config: Optional[SnipConfig] = None,
    ) -> "SnipTable":
        """Build the table from a replayed profile.

        Entries are confidence-gated: a key ships only if it recurred
        ``config.table_min_count`` times with a majority output holding
        ``table_consistency`` of its weight. The gate is what keeps
        short-circuiting nearly error free even when the necessary-input
        selection is imperfect.
        """
        if not records:
            raise MemoizationError("cannot build a SNIP table from an empty profile")
        config = config or SnipConfig()
        table = cls(selection)
        votes: Dict[Tuple[EventType, Tuple], Counter] = defaultdict(Counter)
        writes_by_signature: Dict[Tuple, Tuple[FieldWrite, ...]] = {}
        cycles: Dict[Tuple[EventType, Tuple], List[float]] = defaultdict(list)
        for record in records:
            if record.event_type not in selection.by_event_type:
                continue  # event type absent from the profile used for PFI
            fields = selection.fields_for(record.event_type)
            key = table.key_for_record(record, fields)
            signature = record.trace.output_signature()
            votes[(record.event_type, key)][signature] += record.trace.total_cycles
            writes_by_signature.setdefault(signature, tuple(record.trace.writes))
            cycles[(record.event_type, key)].append(float(record.trace.total_cycles))
        for (event_type, key), counter in votes.items():
            if len(cycles[(event_type, key)]) < config.table_min_count:
                continue
            majority_signature, weight = counter.most_common(1)[0]
            group_weight = sum(counter.values())
            if group_weight <= 0 or weight / group_weight < config.table_consistency:
                continue
            key_cycles = cycles[(event_type, key)]
            table._entries[event_type][key] = TableEntry(
                writes=writes_by_signature[majority_signature],
                avg_cycles=sum(key_cycles) / len(key_cycles),
                profile_weight=float(weight),
            )
        return table

    @staticmethod
    def key_for_record(
        record: ProfileRecord, fields: Sequence[FieldInfo]
    ) -> Tuple:
        """A profile record's key over the selected fields."""
        inputs = record_inputs(record)
        return tuple(inputs.get(info.name) for info in fields)

    # -- lookup ---------------------------------------------------------------

    def lookup(self, event_type: EventType, key: Tuple) -> Optional[TableEntry]:
        """The stored entry for a key, or ``None`` on a miss."""
        return self._entries.get(event_type, {}).get(key)

    def lookup_batch(
        self, event_type: EventType, keys: Sequence[Tuple]
    ) -> List[Optional[TableEntry]]:
        """Entries for many keys of one event type in one gather.

        One ``dict.get`` bound-method pass over the whole key column —
        semantically ``[self.lookup(event_type, key) for key in keys]``
        against the table's current contents.
        """
        entries = self._entries.get(event_type)
        if not entries:
            return [None] * len(keys)
        get = entries.get
        return [get(key) for key in keys]

    def evict_weakest(self) -> bool:
        """Drop the lowest-confidence entry; returns False when empty.

        Confidence is the cycle mass behind the entry's majority output
        (``profile_weight``): fresh online promotions are evicted before
        heavily-confirmed profile entries.
        """
        weakest = None
        for event_type, entries in self._entries.items():
            for key, entry in entries.items():
                if weakest is None or entry.profile_weight < weakest[2].profile_weight:
                    weakest = (event_type, key, entry)
        if weakest is None:
            return False
        del self._entries[weakest[0]][weakest[1]]
        return True

    def clear(self) -> None:
        """Drop every entry (the profiler-directed reset of Sec. VII-B).

        The necessary-input selection survives — only the learned
        key->output mappings are discarded, so online learning rebuilds
        from a clean slate.
        """
        self._entries = defaultdict(dict)

    def install_entry(self, event_type: EventType, key: Tuple, entry: TableEntry) -> None:
        """Insert (or replace) one entry — the online-learning path."""
        self._entries.setdefault(event_type, {})[key] = entry

    def clone(self) -> "SnipTable":
        """Fresh copy sharing the selection but not the entry dicts.

        Scheme runners hand each session its own copy so on-device
        online learning cannot leak between sessions.
        """
        copy = SnipTable(self.selection)
        copy._entries = {
            event_type: dict(entries)
            for event_type, entries in self._entries.items()
        }
        return copy

    def knows(self, event_type: EventType) -> bool:
        """Whether the table covers this event type at all.

        A known type with an *empty* selected-field list is legitimate:
        it means one output signature fits (almost) every instance, so
        the key is the event type itself.
        """
        return event_type in self.selection.by_event_type

    def fields_for(self, event_type: EventType) -> List[FieldInfo]:
        """Necessary inputs for one event type."""
        return self.selection.fields_for(event_type)

    def comparison_bytes(self, event_type: EventType) -> int:
        """Bytes the runtime compares per probe of this event type."""
        return self.selection.comparison_bytes(event_type)

    # -- size accounting -------------------------------------------------------

    @property
    def entry_count(self) -> int:
        """Total entries across all event types."""
        return sum(len(entries) for entries in self._entries.values())

    def entries_for(self, event_type: EventType) -> int:
        """Entry count for one event type."""
        return len(self._entries.get(event_type, {}))

    @property
    def total_bytes(self) -> int:
        """Shipped table size: keys plus stored outputs."""
        total = 0
        for event_type, entries in self._entries.items():
            key_bytes = self.selection.comparison_bytes(event_type)
            for entry in entries.values():
                total += key_bytes + total_output_bytes(entry.writes)
        return total

    def event_types(self) -> List[EventType]:
        """Event types that have at least one entry."""
        return sorted(self._entries, key=lambda event_type: event_type.value)
