"""Developer override hooks (paper Sec. V-B, Option 1).

During app testing, developers can look at the necessary inputs PFI
proposes and (i) force-include input fields PFI must never trim, and
(ii) mark the app's temporary outputs as error-tolerant, letting the
selection accept a subset that occasionally glitches an ``Out.Temp``
field while never corrupting history/extern outputs.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.android.events import EventType


@dataclass
class DeveloperOverrides:
    """Developer-supplied constraints on necessary-input selection."""

    #: Fields that must stay in the table key for a given event type.
    forced_fields: Dict[EventType, Set[str]] = field(
        default_factory=lambda: defaultdict(set)
    )
    #: Fields forced for *every* event type (e.g. ``hist:score``).
    forced_everywhere: Set[str] = field(default_factory=set)
    #: Whether Out.Temp mismatches are acceptable (Sec. IV-B argument).
    tolerate_temp_errors: bool = False

    def force(self, field_name: str, event_type: Optional[EventType] = None) -> None:
        """Mark a field as never-trimmable."""
        if event_type is None:
            self.forced_everywhere.add(field_name)
        else:
            self.forced_fields[event_type].add(field_name)

    def is_forced(self, event_type: EventType, field_name: str) -> bool:
        """Whether selection must keep this field for this event type."""
        return (
            field_name in self.forced_everywhere
            or field_name in self.forced_fields.get(event_type, set())
        )
