"""Input-location schema over profile records.

The lookup-table approaches all start from the same question: *what are
the input locations of this event type's processing?* (Paper Sec. III:
"the union of all the input locations".) This module derives that
universe from a replayed profile:

* ``event:<field>`` — every schema field of the event type (In.Event);
* ``hist:<field>`` — every game-state location, sized at its maximum
  observed byte width (In.History);
* ``extern:<key>`` — every external asset key seen (In.Extern).

and extracts, per record, the value at every location (the full-record
view a naive table would have to store).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Sequence

from repro.android.emulator import ProfileRecord
from repro.android.events import EventType, schema_for
from repro.games.base import InputCategory


@dataclass(frozen=True)
class FieldInfo:
    """One input location: name, paper category, byte width."""

    name: str
    category: InputCategory
    nbytes: int


def records_by_event_type(
    records: Iterable[ProfileRecord],
) -> Dict[EventType, List[ProfileRecord]]:
    """Group a profile by event type (tables are built per type)."""
    grouped: Dict[EventType, List[ProfileRecord]] = defaultdict(list)
    for record in records:
        grouped[record.event_type].append(record)
    return dict(grouped)


def input_universe(
    event_type: EventType, records: Sequence[ProfileRecord]
) -> List[FieldInfo]:
    """The union of all input locations for one event type's records."""
    if not records:
        raise ValueError(f"no records for event type {event_type}")
    universe: List[FieldInfo] = []
    schema = schema_for(event_type)
    for spec in schema.fields:
        universe.append(
            FieldInfo(
                name=f"event:{spec.name}",
                category=InputCategory.EVENT,
                nbytes=spec.nbytes,
            )
        )
    history_sizes: Dict[str, int] = {}
    extern_sizes: Dict[str, int] = {}
    for record in records:
        for name, (_, nbytes) in record.state_snapshot:
            history_sizes[name] = max(history_sizes.get(name, 0), nbytes)
        for key, (_, nbytes) in record.extern_reads:
            extern_sizes[key] = max(extern_sizes.get(key, 0), nbytes)
    for name in sorted(history_sizes):
        universe.append(
            FieldInfo(
                name=f"hist:{name}",
                category=InputCategory.HISTORY,
                nbytes=history_sizes[name],
            )
        )
    for key in sorted(extern_sizes):
        universe.append(
            FieldInfo(
                name=f"extern:{key}",
                category=InputCategory.EXTERN,
                nbytes=extern_sizes[key],
            )
        )
    return universe


def record_inputs(record: ProfileRecord) -> Dict[str, Any]:
    """The value at every input location for one record.

    Locations absent from this record (extern keys it did not fetch)
    are simply missing from the dict; encoders map them to a sentinel.
    """
    inputs: Dict[str, Any] = {}
    for name, value in record.event_values:
        inputs[f"event:{name}"] = value
    for name, (value, _) in record.state_snapshot:
        inputs[f"hist:{name}"] = value
    for key, (value, _) in record.extern_reads:
        inputs[f"extern:{key}"] = value
    return inputs


def universe_bytes(universe: Sequence[FieldInfo]) -> int:
    """Total bytes of one full input record over the universe."""
    return sum(info.nbytes for info in universe)


def category_bytes(universe: Sequence[FieldInfo]) -> Dict[InputCategory, int]:
    """Record bytes broken down by input category."""
    totals: Dict[InputCategory, int] = {category: 0 for category in InputCategory}
    for info in universe:
        totals[info.category] += info.nbytes
    return totals
