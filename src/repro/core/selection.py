"""Necessary-input selection: trim the universe down to what matters.

Two exact criteria drive everything; the PFI model only *orders* the
greedy scans, never decides:

* :func:`table_error` — training-set semantics: key every profile
  record on a field subset, predict each key's cycle-majority output,
  measure the weighted misprediction rate (Fig. 9's y-axis);
* :func:`gated_table_stats` — shipped-table semantics: the same keys
  run through the confidence gate (support + output consistency) and an
  online-warmup discount, yielding the coverage the device will really
  achieve. :func:`select_necessary_inputs` maximises this.

:func:`trimming_curve` reproduces Fig. 9 (error vs. input bytes kept as
fields are trimmed in reverse-importance order).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.android.events import EventType
from repro.core.config import SnipConfig
from repro.core.fields import FieldInfo
from repro.core.overrides import DeveloperOverrides
from repro.core.pfi import EventTypeProfile, PfiAnalysis
from repro.games.base import InputCategory, OutputCategory


def _record_key(profile: EventTypeProfile, row: int, columns: Sequence[int]) -> Tuple:
    """Hashable key of one profile row over selected feature columns."""
    features = profile.dataset.features
    return tuple(features[row, column] for column in columns)


def _signature_for_budget(profile: EventTypeProfile, row: int, ignore_temp: bool) -> Tuple:
    """Output signature used in the error check.

    With ``ignore_temp`` (developer marked Out.Temp tolerant), two
    outputs differing only in temporary fields count as equal.
    """
    trace = profile.records[row].trace
    if not ignore_temp:
        return trace.output_signature()
    return tuple(
        sorted(
            (write.name, write.category.value, write.value)
            for write in trace.writes
            if write.category is not OutputCategory.TEMP
        )
    )


def table_error(
    profile: EventTypeProfile,
    selected: Sequence[FieldInfo],
    ignore_temp: bool = False,
    min_support: int = 1,
) -> float:
    """Cycle-weighted misprediction rate of a table keyed on ``selected``.

    With ``min_support > 1``, keys observed fewer than that many times
    contribute their whole weight as error: a key that never recurs in
    the profile provides no memoization evidence, so a selection that
    fragments the key space into singletons (e.g. by keying on a
    monotonically increasing score) is *worse*, not trivially perfect.
    Selection uses ``min_support=2``; the Fig. 9 trimming curve uses the
    plain training-set semantics (``min_support=1``).
    """
    columns = [profile.encoder.index_of(info.name) for info in selected]
    weights = profile.dataset.sample_weight
    multi_session = profile.session_count >= 2
    by_key: Dict[Tuple, Counter] = defaultdict(Counter)
    support: Dict[Tuple, set] = defaultdict(set)
    for row in range(len(profile.records)):
        key = _record_key(profile, row, columns)
        by_key[key][_signature_for_budget(profile, row, ignore_temp)] += weights[row]
        if min_support > 1:
            # With a multi-session profile, support means "recurs across
            # sessions/users"; single-session profiles fall back to
            # plain recurrence.
            support[key].add(
                profile.records[row].session if multi_session else row % 997
            )
    total = float(weights.sum())
    if total <= 0:
        return 0.0
    if min_support <= 1:
        correct = sum(counter.most_common(1)[0][1] for counter in by_key.values())
    else:
        correct = sum(
            counter.most_common(1)[0][1]
            for key, counter in by_key.items()
            if len(support[key]) >= min_support
        )
    return max(0.0, 1.0 - correct / total)


@dataclass(frozen=True)
class GatedStats:
    """What a confidence-gated table keyed on a field subset achieves.

    ``coverage`` is the cycle-weight share of the profile falling in
    *gated* groups (keys that recur across sessions with a consistent
    majority output) — the share the shipped table would correctly
    short-circuit. ``error`` is the share in gated groups outside the
    majority — the share it would get wrong.
    """

    coverage: float
    error: float


def _profile_codes(profile: EventTypeProfile, ignore_temp: bool) -> Tuple:
    """Cached per-profile arrays: output-signature codes, sessions, weights.

    Signatures are factorised to dense int codes once per profile (and
    per temp-tolerance mode); the gated statistics then run entirely in
    vectorised numpy, which is what makes backward selection over a
    40-field universe affordable.
    """
    cache = getattr(profile, "_gated_cache", None)
    if cache is None:
        cache = {}
        profile._gated_cache = cache  # type: ignore[attr-defined]
    if ignore_temp not in cache:
        signatures = [
            _signature_for_budget(profile, row, ignore_temp)
            for row in range(len(profile.records))
        ]
        code_of: Dict[Tuple, int] = {}
        codes = np.empty(len(signatures), dtype=np.int64)
        for row, signature in enumerate(signatures):
            codes[row] = code_of.setdefault(signature, len(code_of))
        sessions = np.asarray(
            [record.session for record in profile.records], dtype=np.int64
        )
        cache[ignore_temp] = (codes, sessions, profile.dataset.sample_weight)
    return cache[ignore_temp]


def gated_table_stats(
    profile: EventTypeProfile,
    selected: Sequence[FieldInfo],
    config: "SnipConfig",
    ignore_temp: bool = False,
) -> GatedStats:
    """Evaluate a field subset under the shipped table's confidence gate.

    Groups profile records by the selected-field key; a group passes the
    gate when it recurs at least ``table_min_count`` times and its
    majority output holds at least ``table_consistency`` of the group's
    weight. Coverage is discounted by the online-learning warmup: the
    first sightings of every key always execute fully.
    """
    sig_codes, sessions, weights = _profile_codes(profile, ignore_temp)
    n_rows = len(sig_codes)
    total = float(weights.sum())
    if total <= 0:
        return GatedStats(coverage=0.0, error=0.0)
    columns = [profile.encoder.index_of(info.name) for info in selected]
    if columns:
        matrix = profile.dataset.features[:, columns]
        _, groups = np.unique(matrix, axis=0, return_inverse=True)
    else:
        groups = np.zeros(n_rows, dtype=np.int64)
    n_groups = int(groups.max()) + 1

    group_weight = np.bincount(groups, weights=weights, minlength=n_groups)
    group_count = np.bincount(groups, minlength=n_groups)

    # Majority output weight per group: segment-sum weights over
    # (group, signature) pairs, then segment-max over groups.
    n_sigs = int(sig_codes.max()) + 1
    pair = groups.astype(np.int64) * n_sigs + sig_codes
    order = np.argsort(pair, kind="stable")
    sorted_pair = pair[order]
    boundaries = np.flatnonzero(
        np.concatenate(([True], sorted_pair[1:] != sorted_pair[:-1]))
    )
    pair_weight = np.add.reduceat(weights[order], boundaries)
    pair_group = sorted_pair[boundaries] // n_sigs
    group_starts = np.flatnonzero(
        np.concatenate(([True], pair_group[1:] != pair_group[:-1]))
    )
    majority = np.maximum.reduceat(pair_weight, group_starts)
    majority_group = pair_group[group_starts]
    majority_weight = np.zeros(n_groups, dtype=np.float64)
    majority_weight[majority_group] = majority

    supported = group_count >= max(config.table_min_count, config.online_warmup + 1)
    with np.errstate(invalid="ignore", divide="ignore"):
        consistent = np.where(
            group_weight > 0, majority_weight / group_weight, 0.0
        ) >= config.table_consistency
    gated = supported & consistent
    # Warmup discount: with online learning the first ``online_warmup``
    # occurrences of every key execute fully (they are the evidence),
    # so a key that churns rapidly earns proportionally less coverage.
    warmup = config.online_warmup
    with np.errstate(invalid="ignore", divide="ignore"):
        live_fraction = np.where(
            group_count > 0,
            np.maximum(0, group_count - warmup) / np.maximum(group_count, 1),
            0.0,
        )
    covered = float((majority_weight[gated] * live_fraction[gated]).sum())
    wrong = float(
        ((group_weight[gated] - majority_weight[gated]) * live_fraction[gated]).sum()
    )
    return GatedStats(coverage=covered / total, error=wrong / total)


@dataclass(frozen=True)
class TrimPoint:
    """One step of the Fig. 9 trimming walk."""

    bytes_kept: int
    error: float
    removed_field: Optional[str]          # None for the starting point
    removed_category: Optional[InputCategory]
    event_type: Optional[EventType]


@dataclass
class SelectedInputs:
    """The necessary inputs per event type, plus bookkeeping."""

    by_event_type: Dict[EventType, List[FieldInfo]] = field(default_factory=dict)

    def fields_for(self, event_type: EventType) -> List[FieldInfo]:
        """Selected fields for one event type (empty if type unknown)."""
        return list(self.by_event_type.get(event_type, []))

    def comparison_bytes(self, event_type: EventType) -> int:
        """Bytes compared per lookup for one event type."""
        return sum(info.nbytes for info in self.by_event_type.get(event_type, []))

    @property
    def total_bytes(self) -> int:
        """Selected bytes summed over all event types."""
        return sum(
            info.nbytes
            for fields in self.by_event_type.values()
            for info in fields
        )

    def category_breakdown(self) -> Dict[InputCategory, int]:
        """Selected bytes per input category (Fig. 9 colour-coding)."""
        totals = {category: 0 for category in InputCategory}
        for fields in self.by_event_type.values():
            for info in fields:
                totals[info.category] += info.nbytes
        return totals


def _ascending_importance(
    analysis: PfiAnalysis, event_type: EventType
) -> List[FieldInfo]:
    """Universe fields ordered least-important first (trim order)."""
    profile = analysis.profiles[event_type]
    ranked = analysis.importances[event_type]
    order = {imp.name: position for position, imp in enumerate(ranked)}
    # ranked is most-important-first; trim from the tail.
    return sorted(
        profile.universe, key=lambda info: -order.get(info.name, len(order))
    )


def trimming_curve(
    analysis: PfiAnalysis,
    overrides: Optional[DeveloperOverrides] = None,
) -> List[TrimPoint]:
    """Walk Fig. 9: trim fields least-important-first, track error.

    Aggregates across event types by always trimming the globally
    least-important remaining field (per-type errors are combined
    weighted by each type's cycle mass).
    """
    overrides = overrides or DeveloperOverrides()
    kept: Dict[EventType, List[FieldInfo]] = {}
    trim_queue: List[Tuple[float, EventType, FieldInfo]] = []
    for event_type, profile in analysis.profiles.items():
        kept[event_type] = list(profile.universe)
        importance_of = {
            imp.name: imp.importance for imp in analysis.importances[event_type]
        }
        for info in profile.universe:
            if overrides.is_forced(event_type, info.name):
                continue
            trim_queue.append((importance_of.get(info.name, 0.0), event_type, info))
    trim_queue.sort(key=lambda item: (item[0], item[2].name))

    total_cycles = sum(p.total_cycles for p in analysis.profiles.values()) or 1.0

    def aggregate_error() -> float:
        error = 0.0
        for event_type, profile in analysis.profiles.items():
            share = profile.total_cycles / total_cycles
            error += share * table_error(
                profile, kept[event_type], overrides.tolerate_temp_errors
            )
        return error

    def bytes_kept() -> int:
        return sum(info.nbytes for fields in kept.values() for info in fields)

    points = [
        TrimPoint(
            bytes_kept=bytes_kept(),
            error=aggregate_error(),
            removed_field=None,
            removed_category=None,
            event_type=None,
        )
    ]
    for _, event_type, info in trim_queue:
        kept[event_type] = [f for f in kept[event_type] if f.name != info.name]
        points.append(
            TrimPoint(
                bytes_kept=bytes_kept(),
                error=aggregate_error(),
                removed_field=info.name,
                removed_category=info.category,
                event_type=event_type,
            )
        )
    return points


def select_necessary_inputs(
    analysis: PfiAnalysis,
    config: SnipConfig,
    overrides: Optional[DeveloperOverrides] = None,
) -> SelectedInputs:
    """Pick the necessary inputs per event type.

    Objective: maximise the confidence-gated coverage the shipped table
    will achieve (see :func:`gated_table_stats`), then shed bytes.

    The greedy runs *backward from the full input universe*, because
    output behaviour typically depends on fields conjunctively (a board
    digest only predicts a frame together with the animation slot);
    forward construction gets stuck at the empty set. Each round scans
    removable fields least-important-first and removes the first whose
    absence *improves* coverage (these are the session-unique
    fragmenters: scores, wall clocks, per-user digests); when nothing
    improves, it removes the widest field whose absence keeps coverage
    within ``config.selection_epsilon``, shedding bytes. The PFI
    importance ranking orders the scans; every decision is validated
    against exact gated statistics.
    """
    overrides = overrides or DeveloperOverrides()
    epsilon = config.selection_epsilon
    selected = SelectedInputs()
    for event_type, profile in analysis.profiles.items():
        importance_of = {
            imp.name: imp.importance for imp in analysis.importances[event_type]
        }
        ignore_temp = overrides.tolerate_temp_errors

        def coverage_of(fields: List[FieldInfo]) -> float:
            return gated_table_stats(profile, fields, config, ignore_temp).coverage

        kept: List[FieldInfo] = list(profile.universe)
        coverage = coverage_of(kept)

        def removable() -> List[FieldInfo]:
            return [
                info for info in kept
                if not overrides.is_forced(event_type, info.name)
            ]

        while len(kept) > 1:
            # Phase 1: remove the least-important field whose absence
            # improves coverage (it fragments keys without informing).
            improved = False
            for info in sorted(
                removable(),
                key=lambda f: (importance_of.get(f.name, 0.0), -f.nbytes, f.name),
            ):
                candidate = [f for f in kept if f.name != info.name]
                candidate_coverage = coverage_of(candidate)
                if candidate_coverage > coverage + 1e-12:
                    kept = candidate
                    coverage = candidate_coverage
                    improved = True
                    break
            if improved:
                continue
            # Phase 2: shed the widest field coverage can spare. When a
            # plain drop hurts, try swapping the wide field for one or
            # two narrow stand-ins (a 118 kB surface-map buffer usually
            # proxies a couple of scalar descriptor fields).
            shed = False
            for info in sorted(removable(), key=lambda f: (-f.nbytes, f.name)):
                candidate = [f for f in kept if f.name != info.name]
                if coverage_of(candidate) >= coverage - epsilon:
                    kept = candidate
                    coverage = coverage_of(kept)
                    shed = True
                    break
                if info.nbytes <= 64:
                    continue  # swap search is only worth it for wide fields
                kept_names = {f.name for f in kept}
                narrow = sorted(
                    (f for f in profile.universe
                     if f.name not in kept_names and f.nbytes < info.nbytes // 4),
                    key=lambda f: (f.nbytes, f.name),
                )[:12]
                swapped_in = None
                for first_idx, first in enumerate(narrow):
                    if coverage_of(candidate + [first]) >= coverage - epsilon:
                        swapped_in = [first]
                        break
                    for second in narrow[first_idx + 1:]:
                        if coverage_of(candidate + [first, second]) >= coverage - epsilon:
                            swapped_in = [first, second]
                            break
                    if swapped_in:
                        break
                if swapped_in:
                    kept = candidate + swapped_in
                    coverage = coverage_of(kept)
                    shed = True
                    break
            if not shed:
                break
        selected.by_event_type[event_type] = kept
    return selected
