"""SNIP: the paper's primary contribution.

Pipeline (paper Fig. 10): the device records event inputs
(:mod:`repro.android.tracing`), the cloud replays them on the emulator
(:mod:`repro.android.emulator`), PFI identifies the necessary input
fields (:mod:`repro.core.pfi`, :mod:`repro.core.selection`), a compact
lookup table is built (:mod:`repro.core.table`) and shipped back, and
the runtime short-circuits matching events (:mod:`repro.core.runtime`).
:mod:`repro.core.learning` closes the continuous-learning loop.
"""

from repro.core.config import SnipConfig
from repro.core.devreport import DeveloperReport, build_developer_report
from repro.core.federated import (
    DeviceContribution,
    FederatedAggregator,
    build_device_contribution,
    federate,
)
from repro.core.fields import (
    FieldInfo,
    input_universe,
    record_inputs,
    records_by_event_type,
)
from repro.core.learning import ContinuousLearner, EpochResult
from repro.core.overrides import DeveloperOverrides
from repro.core.package_cache import (
    CacheStats,
    PackageCache,
    default_package_cache,
    package_digest,
)
from repro.core.pfi import EventTypeProfile, PfiAnalysis, run_pfi
from repro.core.profiler import CloudProfiler, SnipPackage
from repro.core.quality import QualityController, QualityReport
from repro.core.serialization import (
    dump_table,
    load_table,
    table_from_dict,
    table_to_dict,
)
from repro.core.runtime import SnipRuntime
from repro.core.selection import (
    SelectedInputs,
    TrimPoint,
    select_necessary_inputs,
    trimming_curve,
)
from repro.core.table import SnipTable

__all__ = [
    "CacheStats",
    "CloudProfiler",
    "ContinuousLearner",
    "DeveloperReport",
    "DeviceContribution",
    "FederatedAggregator",
    "QualityController",
    "QualityReport",
    "build_developer_report",
    "build_device_contribution",
    "default_package_cache",
    "dump_table",
    "federate",
    "load_table",
    "table_from_dict",
    "table_to_dict",
    "DeveloperOverrides",
    "EpochResult",
    "EventTypeProfile",
    "FieldInfo",
    "PackageCache",
    "PfiAnalysis",
    "SelectedInputs",
    "SnipConfig",
    "SnipPackage",
    "SnipRuntime",
    "SnipTable",
    "TrimPoint",
    "input_universe",
    "package_digest",
    "record_inputs",
    "records_by_event_type",
    "run_pfi",
    "select_necessary_inputs",
    "trimming_curve",
]
