"""Continuous learning (paper Sec. V-B Option 2, Fig. 12).

Instead of fixing the necessary inputs at development time, SNIP keeps
looping: record the user's sessions, rebuild the profile, re-run PFI,
re-ship the table. :class:`ContinuousLearner` drives that loop epoch by
epoch and measures, after each epoch, the erroneous-output-field rate
the *current* table would exhibit on the next (unseen) session — the
Fig. 12 y-axis.

To reproduce the paper's experiment exactly, the first epochs can be
made artificially data-starved (``initial_events`` / ``ramp``): early
tables then mispredict heavily (~40%), and the error collapses as real
profile volume accumulates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.android.tracing import RecordedTrace
from repro.core.config import SnipConfig
from repro.core.overrides import DeveloperOverrides
from repro.core.profiler import CloudProfiler
from repro.core.table import SnipTable
from repro.rng import ReproRng
from repro.users.tracegen import generate_trace


@dataclass(frozen=True)
class EpochResult:
    """One continuous-learning epoch's outcome."""

    epoch: int
    training_events: int
    table_entries: int
    hit_fraction: float        # of evaluation events that would hit
    error_fraction: float      # of evaluated output fields that are wrong
    confident: bool            # error below the adoption threshold


class ContinuousLearner:
    """Drives the record -> profile -> PFI -> evaluate loop."""

    def __init__(
        self,
        game_name: str,
        config: Optional[SnipConfig] = None,
        overrides: Optional[DeveloperOverrides] = None,
        session_duration_s: float = 30.0,
        initial_events: int = 40,
        ramp: float = 1.8,
        confidence_threshold: float = 0.001,
        ungated_epochs: int = 0,
        seed: int = 0,
    ) -> None:
        if initial_events < 1:
            raise ValueError("initial_events must be positive")
        if ramp <= 1.0:
            raise ValueError("ramp must exceed 1.0")
        self.game_name = game_name
        self.config = config or SnipConfig()
        self.profiler = CloudProfiler(self.config, overrides)
        self.session_duration_s = session_duration_s
        self.initial_events = initial_events
        self.ramp = ramp
        self.confidence_threshold = confidence_threshold
        #: For the first N epochs the table ships *without* the
        #: confidence gate, reproducing the paper's Fig. 12 setup where
        #: an insufficient profile short-circuits ~40% of output fields
        #: wrongly before the loop recovers.
        self.ungated_epochs = ungated_epochs
        self.seed = seed
        self._traces: List[RecordedTrace] = []
        self.history: List[EpochResult] = []
        #: The package each epoch built, in epoch order; the fig12
        #: driver publishes these to the registry instead of blindly
        #: shipping them.
        self.packages: List = []

    # -- data starvation (Fig. 12 setup) -----------------------------------

    def _available_events(self, epoch: int) -> int:
        """How many events per session the profile may use at an epoch."""
        return int(self.initial_events * (self.ramp ** epoch))

    def _truncate(self, trace: RecordedTrace, limit: int) -> RecordedTrace:
        return RecordedTrace(
            game_name=trace.game_name,
            seed=trace.seed,
            events=trace.events[:limit],
        )

    # -- the loop --------------------------------------------------------------

    def _epoch_seeds(self, epoch: int) -> tuple:
        """``(session_seed, eval_seed)`` for one epoch.

        A pure function of ``(self.seed, epoch)`` — this is what lets a
        fleet executor compute epochs in independent workers: any epoch's
        training corpus can be regenerated from the seeds of the epochs
        before it, with no state carried between processes.
        """
        rng = ReproRng(self.seed).fork(f"epoch:{epoch}")
        return rng.integer(1, 2**31), rng.integer(1, 2**31)

    def ingest_session(self, epoch: int) -> None:
        """Record (generate) one epoch's play session without profiling.

        Parallel epoch evaluation pre-loads a learner with sessions
        ``0..epoch-1`` through this before calling :meth:`run_epoch`.
        """
        session_seed, _ = self._epoch_seeds(epoch)
        self._traces.append(
            generate_trace(self.game_name, session_seed, self.session_duration_s)
        )

    def run_epoch(self, epoch: int) -> EpochResult:
        """One loop turn: record a session, rebuild, evaluate on the next."""
        _, eval_seed = self._epoch_seeds(epoch)
        self.ingest_session(epoch)
        limit = self._available_events(epoch)
        training = [self._truncate(trace, limit) for trace in self._traces]
        if epoch < self.ungated_epochs:
            from dataclasses import replace

            starved_config = replace(
                self.config, table_min_count=1, table_consistency=0.5
            )
            profiler = CloudProfiler(starved_config, self.profiler.overrides)
            package = profiler.build_package(self.game_name, training)
        else:
            package = self.profiler.build_package(self.game_name, training)
        eval_trace = generate_trace(
            self.game_name, eval_seed, self.session_duration_s
        )
        hit_fraction, error_fraction = self.evaluate(package.table, eval_trace)
        result = EpochResult(
            epoch=epoch,
            training_events=sum(len(trace) for trace in training),
            table_entries=package.table.entry_count,
            hit_fraction=hit_fraction,
            error_fraction=error_fraction,
            confident=error_fraction <= self.confidence_threshold,
        )
        self.history.append(result)
        self.packages.append(package)
        return result

    def run(self, epochs: int) -> List[EpochResult]:
        """Run the loop for ``epochs`` turns, returning all results."""
        return [self.run_epoch(epoch) for epoch in range(epochs)]

    # -- evaluation ----------------------------------------------------------------

    def evaluate(self, table: SnipTable, trace: RecordedTrace) -> tuple:
        """(hit fraction, erroneous-output-field fraction) on a session."""
        return evaluate_table(self.game_name, table, trace)


def evaluate_table(
    game_name: str, table: SnipTable, trace: RecordedTrace
) -> tuple:
    """(hit fraction, erroneous-output-field fraction) on a session.

    The session is replayed faithfully (ground truth evolves from
    real processing); at each event we ask what the table would have
    substituted and compare its output fields against the truth.
    Output fields of missed events are counted as correct — they
    would have been computed, not substituted.

    Shared by the continuous learner (Fig. 12's y-axis) and the
    package registry, whose recorded ``selection_accuracy`` metric is
    ``1 - error_fraction`` on a held-out session.
    """
    from repro.games.registry import GAME_CONTENT_SEED, create_game

    game = create_game(game_name, seed=GAME_CONTENT_SEED)
    hits = 0
    total_fields = 0
    wrong_fields = 0
    events = 0
    for recorded in trace:
        event = recorded.to_event()
        game.advance_engine(event)
        entry = None
        if table.knows(event.event_type):
            fields = table.fields_for(event.event_type)
            key = []
            for info in fields:
                kind, _, name = info.name.partition(":")
                if kind == "event":
                    key.append(event.values.get(name))
                elif kind == "hist":
                    key.append(
                        game.state.peek(name) if game.state.has(name) else None
                    )
                else:
                    key.append(game.extern_source.peek(name)[0])
            entry = table.lookup(event.event_type, tuple(key))
        truth = game.process(event)  # ground truth always executes
        events += 1
        total_fields += max(1, len(truth.writes))
        if entry is None:
            continue
        hits += 1
        predicted = {write.name: write.value for write in entry.writes}
        actual = {write.name: write.value for write in truth.writes}
        for name in sorted(set(predicted) | set(actual)):
            if predicted.get(name) != actual.get(name):
                wrong_fields += 1
    hit_fraction = hits / events if events else 0.0
    error_fraction = wrong_fields / total_fields if total_fields else 0.0
    return (hit_fraction, error_fraction)
