#!/usr/bin/env python3
"""Bring your own game: write a handler, profile it, snip it.

Shows the full public surface a downstream user touches to put a *new*
event-driven app under SNIP: subclass
:class:`~repro.games.base.Game`, express the handler through the traced
context, record sessions, and hand everything to the cloud profiler.

The toy app is a whack-a-mole: a mole sits in one of nine holes; taps on
the mole score, taps elsewhere do nothing (redundant processing SNIP
learns to skip).
"""

from repro import CloudProfiler, SnipConfig, SnipRuntime, snapdragon_821
from repro.android.events import EventType, make_frame_tick, make_touch
from repro.android.tracing import EventTracer
from repro.games.base import Game, HandlerContext, mix_values
from repro.games.common import play_sound, render_frame
from repro.rng import ReproRng
from repro.units import format_bytes

HOLES = 9
HOLE_W = 480
HOLE_H = 853


class WhackAMole(Game):
    """Nine holes, one mole; taps on the mole score and move it."""

    name = "whack_a_mole"
    handled_event_types = (EventType.TOUCH, EventType.FRAME_TICK)
    upkeep_cycles = {EventType.FRAME_TICK: 2_000_000, EventType.TOUCH: 100_000}
    upkeep_ip_units = {EventType.FRAME_TICK: {"gpu": 1.0}}

    def build_state(self) -> None:
        self.state.declare("mole_hole", self.seed % HOLES, 1)
        self.state.declare("score", 0, 4)
        self.state.declare("bounce", 0, 1)  # pop-up animation frames

    def on_event(self, ctx: HandlerContext) -> None:
        if ctx.trace.event_type is EventType.TOUCH:
            self._on_tap(ctx)
        else:
            self._on_tick(ctx)

    def _on_tap(self, ctx: HandlerContext) -> None:
        if ctx.ev("action") != 0:
            return
        x, y = ctx.ev("x"), ctx.ev("y")
        hole = min(HOLES - 1, (x // HOLE_W) + 3 * (y // HOLE_H))
        ctx.cpu_func("hit_test", (hole,), 50_000)
        mole = ctx.hist("mole_hole")
        if hole != mole:
            return  # whiffed tap: full processing, no change
        score = ctx.hist("score")
        ctx.out_hist("score", score + 1)
        ctx.out_hist("mole_hole", mix_values("mole", score + 1) % HOLES)
        ctx.out_hist("bounce", 6)
        play_sound(ctx, sound_id=1)

    def _on_tick(self, ctx: HandlerContext) -> None:
        ctx.ev("slot")
        mole = ctx.hist("mole_hole")
        bounce = ctx.hist("bounce")
        ctx.cpu(800_000)
        if bounce > 0:
            ctx.out_hist("bounce", bounce - 1)
        content = mix_values("scene", mole, bounce) & 0xFFFFFFFF
        render_frame(ctx, content, gpu_units=2.0, compose_cycles=2_500_000)


def record_session(seed: int, duration_s: float) -> "EventTracer":
    """A scripted user: taps at ~2 Hz, sometimes on the mole."""
    rng = ReproRng(seed)
    tracer = EventTracer(WhackAMole.name, seed=seed)
    sequence = 0
    tap_at = rng.exponential(0.5)
    ticks = int(duration_s * 60)
    for index in range(ticks):
        now = index / 60.0
        sequence += 1
        tracer.record(make_frame_tick(slot=index % 4, sequence=sequence,
                                      timestamp=now))
        if now >= tap_at:
            sequence += 1
            hole = rng.integer(0, HOLES)
            tracer.record(
                make_touch(
                    (hole % 3) * HOLE_W + 200,
                    (hole // 3) * HOLE_H + 300,
                    sequence=sequence,
                    timestamp=now,
                )
            )
            tap_at = now + rng.exponential(0.5)
    return tracer


def main() -> None:
    print("== SNIP on a custom game (whack-a-mole) ==\n")
    config = SnipConfig()
    profiler = CloudProfiler(config)
    traces = [record_session(seed, 30.0).trace for seed in (1, 2)]

    # The profiler replays recordings against a fresh game instance; for
    # custom games we drive the stages explicitly.
    records = []
    for session, trace in enumerate(traces):
        records.extend(
            profiler.emulator.replay(WhackAMole(seed=0), trace, session=session)
        )
    analysis = profiler.analyze(records)
    selection = profiler.select(analysis)
    from repro.core.table import SnipTable

    table = SnipTable.build(records, selection, config)
    print(f"profiled events: {len(records)}")
    print(f"table: {table.entry_count} entries, {format_bytes(table.total_bytes)}")
    for event_type, fields in selection.by_event_type.items():
        print(f"  necessary inputs [{event_type.value}]: "
              f"{[info.name for info in fields]}")

    # Run an unseen session under SNIP and under the plain baseline.
    def play(runtime_factory):
        soc = snapdragon_821()
        game = WhackAMole(seed=0)
        runner = runtime_factory(soc, game)
        clock = 0.0
        for recorded in record_session(9, 30.0).trace:
            event = recorded.to_event()
            if event.timestamp > clock:
                soc.advance_time(event.timestamp - clock)
                clock = event.timestamp
            runner.deliver(event)
        soc.advance_time(max(0.0, 30.0 - clock))
        return soc, runner

    from repro.android.dispatch import EventLoop

    snip_soc, runtime = play(
        lambda soc, game: SnipRuntime(soc, game, table.clone(), config)
    )
    base_soc, _ = play(EventLoop)
    savings = 1 - snip_soc.meter.total_joules / base_soc.meter.total_joules
    print(f"\nhit rate: {runtime.stats.hit_rate:.1%}  "
          f"coverage: {runtime.stats.coverage:.1%}  "
          f"energy saved vs unsnipped run: {savings:.1%}")


if __name__ == "__main__":
    main()
