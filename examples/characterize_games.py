#!/usr/bin/env python3
"""Characterize the seven game workloads (the paper's Sec. II study).

Regenerates the motivation figures on live sessions: component energy
breakdown (Fig. 2), battery drain (Fig. 3), and useless-event fractions
(Fig. 4) — the numbers that justify attacking redundant event processing
at whole-SoC scope. The per-game sessions fan out through the
``repro.fleet`` executor (pass ``--jobs N`` for a worker pool); the
printed figures are identical at any job count.
"""

import sys

from repro.analysis.fig2_energy_breakdown import run_fig2
from repro.analysis.fig3_battery_drain import run_fig3
from repro.analysis.fig4_useless_events import run_fig4
from repro.fleet import make_executor

DURATION_S = 45.0
JOBS = 1


def main() -> None:
    executor = make_executor(JOBS)
    print("== Fig. 2: where the energy goes ==")
    fig2 = run_fig2(duration_s=DURATION_S, executor=executor)
    print(fig2.to_text())
    heavy = max(fig2.breakdowns, key=lambda b: b.cpu)
    print(f"\nCPU-heaviest workload: {heavy.game_name} ({heavy.cpu:.0%} CPU)")
    print("Sensors + memory stay under ~10% everywhere — optimizing them "
          "alone cannot move the needle.\n")

    print("== Fig. 3: rampant battery drain ==")
    fig3 = run_fig3(duration_s=DURATION_S, executor=executor)
    print(fig3.to_text())
    print(f"\nHeaviest game drains {fig3.drain_speedup_vs_idle:.1f}x faster "
          f"than the idle phone (paper: ~6x).\n")

    print("== Fig. 4: useless event processing ==")
    fig4 = run_fig4(duration_s=DURATION_S, executor=executor)
    print(fig4.to_text())
    worst = fig4.by_game()[fig4.max_useless_game]
    print(f"\nWorst offender: {worst.game_name} — "
          f"{worst.useless_fraction:.0%} of user events change nothing "
          f"(the catapult-at-max-stretch case), wasting "
          f"{worst.wasted_energy_fraction:.0%} of its event energy.")


if __name__ == "__main__":
    if len(sys.argv) > 2 and sys.argv[1] == "--jobs":
        JOBS = int(sys.argv[2])
    main()
