#!/usr/bin/env python3
"""Federated SNIP across a fleet of heterogeneous users.

The paper's Sec. VII-C names federated learning as the way to cut the
multi-day backend cost and enable collective learning. This example
builds a fleet of users with different play styles, has every device
compute its own per-key statistics locally, merges them in the cloud,
and shows that the fleet table serves a brand-new user out of the box.
"""

from repro.core.config import SnipConfig
from repro.core.federated import federate
from repro.core.profiler import CloudProfiler
from repro.core.runtime import SnipRuntime
from repro.games.registry import GAME_CONTENT_SEED, create_game
from repro.soc.soc import snapdragon_821
from repro.units import format_bytes
from repro.users.population import Population
from repro.users.sessions import run_baseline_session

GAME = "candy_crush"
DEVICES = 5
SESSIONS_PER_DEVICE = 2
SESSION_S = 30.0


def main() -> None:
    print(f"== federated SNIP on {GAME} ({DEVICES} devices) ==\n")
    config = SnipConfig()

    # The necessary-input selection still comes from one centrally
    # profiled seed (a development-time artifact, tiny and shareable).
    package = CloudProfiler(config).build_package_from_sessions(
        GAME, seeds=[1], duration_s=SESSION_S
    )
    print(f"centrally selected necessary inputs: "
          f"{package.selection.total_bytes} B across "
          f"{len(package.selection.by_event_type)} event types")

    population = Population(seed=11)
    print(f"fleet mix: {population.census(DEVICES)}")
    per_device = {
        device_id: [
            population.user_trace(GAME, device_id, session, SESSION_S)
            for session in range(SESSIONS_PER_DEVICE)
        ]
        for device_id in range(DEVICES)
    }

    fleet_table, uplink = federate(GAME, per_device, package.selection, config)
    raw_bytes = sum(t.uplink_bytes for ts in per_device.values() for t in ts)
    print(f"\nfleet table: {fleet_table.entry_count} entries, "
          f"{format_bytes(fleet_table.total_bytes)}")
    print(f"statistics uploaded: {format_bytes(uplink)} "
          f"(raw events would be {format_bytes(raw_bytes)}; "
          f"no raw events leave any device)")
    print("cloud replay cost: none — devices replayed locally")

    # A brand-new user benefits immediately from the fleet's experience.
    soc = snapdragon_821()
    runtime = SnipRuntime(soc, create_game(GAME, seed=GAME_CONTENT_SEED),
                          fleet_table, config)
    clock = 0.0
    from repro.users.tracegen import generate_events

    for event in generate_events(GAME, seed=123, duration_s=SESSION_S):
        if event.timestamp > clock:
            soc.advance_time(event.timestamp - clock)
            clock = event.timestamp
        runtime.deliver(event)
    soc.advance_time(max(0.0, SESSION_S - clock))
    baseline = run_baseline_session(GAME, seed=123, duration_s=SESSION_S)
    savings = 1 - soc.meter.total_joules / baseline.report.total_joules
    print(f"\nnew user, first session: hit rate {runtime.stats.hit_rate:.1%}, "
          f"coverage {runtime.stats.coverage:.1%}, "
          f"energy saved {savings:.1%}")


if __name__ == "__main__":
    main()
