#!/usr/bin/env python3
"""Federated SNIP across a fleet of heterogeneous users.

The paper's Sec. VII-C names federated learning as the way to cut the
multi-day backend cost and enable collective learning. This example
builds a fleet of users with different play styles, has every device
compute its own per-key statistics locally — sharded across the
``repro.fleet`` engine's worker pool — merges them in the cloud, and
shows that the fleet table serves a brand-new user out of the box.
"""

import sys

from repro.core.config import SnipConfig
from repro.core.runtime import SnipRuntime
from repro.fleet import FleetEngine, FleetSpec, make_executor
from repro.games.registry import GAME_CONTENT_SEED, create_game
from repro.soc.soc import snapdragon_821
from repro.units import format_bytes
from repro.users.population import Population
from repro.users.sessions import run_baseline_session

GAME = "candy_crush"
DEVICES = 5
SESSIONS_PER_DEVICE = 2
SESSION_S = 30.0
POPULATION_SEED = 11
JOBS = 1


def main() -> None:
    print(f"== federated SNIP on {GAME} ({DEVICES} devices) ==\n")
    config = SnipConfig()

    # The whole fleet — trace generation, local replay, statistics
    # upload — runs through the fleet engine. The necessary-input
    # selection still comes from one centrally profiled seed session (a
    # development-time artifact, tiny and shareable), which the engine
    # builds once and ships to every device.
    spec = FleetSpec(
        game_name=GAME,
        devices=DEVICES,
        sessions_per_device=SESSIONS_PER_DEVICE,
        duration_s=SESSION_S,
        seed=POPULATION_SEED,
        profile_seeds=(1,),
        profile_duration_s=SESSION_S,
        measure_energy=False,   # this example federates; it does not meter
        federate=True,
    )
    engine = FleetEngine(spec, executor=make_executor(JOBS), config=config)
    package = engine.build_package()
    print(f"centrally selected necessary inputs: "
          f"{package.selection.total_bytes} B across "
          f"{len(package.selection.by_event_type)} event types")
    print(f"fleet mix: {Population(seed=POPULATION_SEED).census(DEVICES)}")

    report = engine.run()
    fleet_table = report.fleet_table
    print(f"\nfleet table: {fleet_table.entry_count} entries, "
          f"{format_bytes(fleet_table.total_bytes)}")
    print(f"statistics uploaded: {format_bytes(report.uplink_bytes)} "
          f"(raw events would be "
          f"{format_bytes(report.totals.raw_uplink_bytes)}; "
          f"no raw events leave any device)")
    print("cloud replay cost: none — devices replayed locally")

    # A brand-new user benefits immediately from the fleet's experience.
    soc = snapdragon_821()
    runtime = SnipRuntime(soc, create_game(GAME, seed=GAME_CONTENT_SEED),
                          fleet_table, config)
    clock = 0.0
    from repro.users.tracegen import generate_events

    for event in generate_events(GAME, seed=123, duration_s=SESSION_S):
        if event.timestamp > clock:
            soc.advance_time(event.timestamp - clock)
            clock = event.timestamp
        runtime.deliver(event)
    soc.advance_time(max(0.0, SESSION_S - clock))
    baseline = run_baseline_session(GAME, seed=123, duration_s=SESSION_S)
    savings = 1 - soc.meter.total_joules / baseline.report.total_joules
    print(f"\nnew user, first session: hit rate {runtime.stats.hit_rate:.1%}, "
          f"coverage {runtime.stats.coverage:.1%}, "
          f"energy saved {savings:.1%}")


if __name__ == "__main__":
    if len(sys.argv) > 2 and sys.argv[1] == "--jobs":
        JOBS = int(sys.argv[2])
    main()
