#!/usr/bin/env python3
"""Compare optimization schemes on one game (the paper's Fig. 11 core).

Runs the same unseen session under the baseline, Max CPU (function-level
reuse), Max IP (sleep states + cacheable repeats), SNIP, and SNIP with
free lookups — printing savings, coverage, and overheads side by side.
"""

from repro import (
    BaselineScheme,
    MaxCpuScheme,
    MaxIpScheme,
    NoOverheadsScheme,
    SnipConfig,
    SnipScheme,
    run_scheme_session,
)

GAME = "candy_crush"
SEED = 7
DURATION_S = 45.0


def main() -> None:
    print(f"== scheme comparison on {GAME} (seed {SEED}) ==\n")
    config = SnipConfig()
    snip = SnipScheme(config)
    print("building the SNIP package (cloud profiling + PFI)...")
    package = snip.prepare(GAME)
    print(f"  table entries: {package.table.entry_count}, "
          f"necessary-input bytes: {package.selection.total_bytes}\n")
    no_overheads = NoOverheadsScheme(config)
    no_overheads._packages[GAME] = package

    baseline = run_scheme_session(BaselineScheme(), GAME, SEED, DURATION_S)
    print(f"{'scheme':14s} {'power':>8s} {'savings':>9s} {'coverage':>9s} "
          f"{'lookup ovh':>11s} {'battery':>8s}")
    print(f"{'baseline':14s} {baseline.average_watts:7.2f}W {'-':>9s} "
          f"{'-':>9s} {'-':>11s} {baseline.battery_hours:6.1f} h")
    for scheme in (MaxCpuScheme(), MaxIpScheme(), snip, no_overheads):
        run = run_scheme_session(scheme, GAME, SEED, DURATION_S)
        print(
            f"{scheme.name:14s} {run.average_watts:7.2f}W "
            f"{run.savings_vs(baseline):8.1%} {run.coverage:8.1%} "
            f"{run.lookup_overhead_fraction:10.1%} {run.battery_hours:6.1f} h"
        )
    print("\nPartial schemes are scoped to one side of the SoC (Table I); "
          "only SNIP snips the whole event chain.")


if __name__ == "__main__":
    main()
