#!/usr/bin/env python3
"""Quickstart: run the whole SNIP pipeline on one game in ~30 seconds.

The flow mirrors the paper's Fig. 10:

1. a user plays AB Evolution on the simulated phone (events recorded);
2. the cloud replays the recordings on the emulator, runs PFI, selects
   the necessary inputs, and builds the shrunken lookup table;
3. the table ships back and a fresh session runs under the SNIP
   runtime, short-circuiting redundant event processing;
4. we compare energy against the unmodified baseline.
"""

from repro import (
    CloudProfiler,
    GAME_CONTENT_SEED,
    SnipConfig,
    SnipRuntime,
    create_game,
    generate_events,
    run_baseline_session,
    snapdragon_821,
)
from repro.units import format_bytes

GAME = "ab_evolution"
PROFILE_SESSIONS = (1, 2)   # two recorded play sessions feed the cloud
PROFILE_DURATION_S = 45.0
EVAL_SEED = 7               # a session the profile has never seen
EVAL_DURATION_S = 45.0


def main() -> None:
    print(f"== SNIP quickstart on {GAME} ==\n")

    # -- cloud side: record -> replay -> PFI -> necessary inputs -> table
    profiler = CloudProfiler(SnipConfig())
    package = profiler.build_package_from_sessions(
        GAME, seeds=PROFILE_SESSIONS, duration_s=PROFILE_DURATION_S
    )
    print(f"profiled events:      {package.profile_events}")
    print(f"uplink to cloud:      {format_bytes(package.uplink_bytes)}")
    print(f"naive record store:   {format_bytes(package.full_record_bytes)}")
    print(f"shipped SNIP table:   {format_bytes(package.table_bytes)} "
          f"({package.shrink_factor:.0f}x smaller)")
    for event_type, fields in sorted(
        package.selection.by_event_type.items(), key=lambda kv: kv[0].value
    ):
        names = ", ".join(info.name for info in fields) or "(event type alone)"
        print(f"  necessary inputs [{event_type.value}]: {names}")

    # -- device side: run an unseen session under the SNIP runtime
    soc = snapdragon_821()
    game = create_game(GAME, seed=GAME_CONTENT_SEED)
    runtime = SnipRuntime(soc, game, package.table, profiler.config)
    clock = 0.0
    for event in generate_events(GAME, seed=EVAL_SEED, duration_s=EVAL_DURATION_S):
        if event.timestamp > clock:
            soc.advance_time(event.timestamp - clock)
            clock = event.timestamp
        runtime.deliver(event)
    soc.advance_time(max(0.0, EVAL_DURATION_S - clock))

    baseline = run_baseline_session(GAME, seed=EVAL_SEED, duration_s=EVAL_DURATION_S)
    snip_joules = soc.meter.total_joules
    savings = 1.0 - snip_joules / baseline.report.total_joules

    print("\n== results on an unseen session ==")
    print(f"baseline energy:      {baseline.report.total_joules:8.1f} J "
          f"({baseline.average_watts:.2f} W)")
    print(f"snip energy:          {snip_joules:8.1f} J "
          f"({snip_joules / EVAL_DURATION_S:.2f} W)")
    print(f"energy saved:         {savings:.1%}   (paper: 24-37%)")
    print(f"events short-circuited: {runtime.stats.hit_rate:.1%}")
    print(f"execution covered:    {runtime.stats.coverage:.1%}   (paper: 40-61%)")
    print(f"battery life:         {baseline.battery_hours:.1f} h -> "
          f"{soc.battery.hours_to_empty(snip_joules / EVAL_DURATION_S):.1f} h")


if __name__ == "__main__":
    main()
