#!/usr/bin/env python3
"""Continuous learning without developer intervention (paper Fig. 12).

Starts SNIP with an artificially insufficient profile — the shipped
table confidently short-circuits contexts it has barely seen, and a
large fraction of substituted output fields are wrong. As the loop keeps
recording sessions, rebuilding the profile, and re-running PFI, the
error collapses below the adoption threshold.
"""

from repro.analysis.fig12_continuous_learning import run_fig12

GAME = "ab_evolution"


def main() -> None:
    print(f"== continuous learning on {GAME} ==\n")
    result = run_fig12(
        game_name=GAME,
        epochs=8,
        session_duration_s=20.0,
        initial_events=60,
        ramp=2.2,
        ungated_epochs=2,
    )
    print(result.to_text())
    print(f"\ninitial erroneous output fields: {result.initial_error:.1%} "
          f"(paper: ~40% with an insufficient profile)")
    print(f"final erroneous output fields:   {result.final_error:.3%} "
          f"(paper: < 0.1%)")
    if result.converged_epoch is not None:
        print(f"confidence threshold reached at epoch {result.converged_epoch} "
              f"— only then would the runtime enable short-circuiting.")


if __name__ == "__main__":
    main()
