"""Serve-daemon cycle benchmarks (standalone script).

Times the supervisor's two operating regimes on a small fleet — cold
cycles (fresh profiles, real fleet work) and a full replay of the same
run directory (every stage served from the ledger) — checks the
latency/throughput gates, verifies the crash-resume contract end to
end (kill mid-run, resume, compare ledger bytes against the
uninterrupted run), and writes ``BENCH_service.json`` at the repo
root.

The daemon is the production control loop: a cycle's wall time bounds
how fast the fleet's miss reports turn into refreshed tables, and
replay speed bounds restart time after a crash. The gates guard
against stage plumbing (ledger persistence, queue scans, lineage
walks) picking up accidental quadratic work as runs grow.

Run directly (CI's perf-smoke job uses ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_service.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

from repro.service import ServiceConfig, SnipService

REPO_ROOT = Path(__file__).resolve().parent.parent
REPORT_PATH = REPO_ROOT / "BENCH_service.json"

GAME = "colorphun"


class _Killed(Exception):
    """Simulated crash for the resume-identity check."""


def _config(quick: bool) -> ServiceConfig:
    return ServiceConfig(
        game_name=GAME,
        devices=4 if quick else 8,
        sessions_per_device=1,
        session_duration_s=2.0 if quick else 4.0,
        seed=0,
        shard_size=2,
        base_profile_seeds=(1,),
        profile_duration_s=3.0 if quick else 6.0,
        max_profile_seeds=4,
        seeds_per_cycle=1,
        ungated_cycles=1,
        eval_duration_s=3.0 if quick else 6.0,
    )


def bench_service(quick: bool) -> dict:
    cycles = 3 if quick else 6
    replays = 5 if quick else 20
    config = _config(quick)
    scratch = Path(tempfile.mkdtemp(prefix="bench-service-"))
    try:
        # -- cold: the full profile -> publish -> plan -> ship loop.
        service = SnipService(config, scratch / "cold")
        start = time.perf_counter()
        result = service.run(cycles=cycles)
        cold_s = time.perf_counter() - start
        assert result.cycles_completed == cycles
        reference = service.ledger.to_json()

        # -- replay: every stage already journalled; run() must
        # recognise completion without re-executing any of them.
        start = time.perf_counter()
        for _ in range(replays):
            SnipService(config, scratch / "cold").run(cycles=cycles)
        replay_s = time.perf_counter() - start

        # -- resume identity: kill mid-run, resume, compare bytes.
        def kill_late(cycle: int, stage: str, phase: str) -> None:
            if (cycle, stage, phase) == (cycles - 1, "publish", "pre"):
                raise _Killed()

        crashed = SnipService(
            config, scratch / "killed", stage_hook=kill_late
        )
        try:
            crashed.run(cycles=cycles)
            raise AssertionError("kill hook never fired")
        except _Killed:
            pass
        resumed = SnipService(config, scratch / "killed")
        resumed.run(cycles=cycles)
        resume_identical = resumed.ledger.to_json() == reference

        return {
            "cycles": cycles,
            "cycle_s": cold_s / cycles,
            "cycles_per_s": cycles / cold_s,
            "replay_run_s": replay_s / replays,
            "replay_runs_s": replays / replay_s,
            "resume_identical": resume_identical,
        }
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller fleet and relaxed gates (CI smoke mode)",
    )
    args = parser.parse_args(argv)
    quick = args.quick

    # Floors sit far under measured rates (cold cycles land in the
    # hundreds of milliseconds, replays in the low milliseconds on an
    # idle machine) so only a real regression — a stage re-executing
    # on replay, ledger persistence going quadratic — trips them on
    # shared CI runners.
    gates = {
        "cycles_per_s": 0.2 if quick else 0.1,
        "replay_runs_s": 5.0 if quick else 5.0,
    }

    outcome = bench_service(quick)
    results = {"quick": quick, "benchmarks": {"service": outcome}, "gates": {}}
    print(f"cycle_s          {outcome['cycle_s']:8.3f} s/cycle", flush=True)
    print(f"replay_run_s     {outcome['replay_run_s']:8.4f} s/run", flush=True)
    print(f"resume_identical {outcome['resume_identical']}", flush=True)

    failed = []
    for name, floor in gates.items():
        measured = outcome[name]
        ok = measured >= floor
        results["gates"][name] = {"floor": floor, "measured": measured, "ok": ok}
        if not ok:
            failed.append(f"{name}: {measured:.2f} < {floor:.2f} /s")
    results["gates"]["resume_identical"] = {
        "floor": True,
        "measured": outcome["resume_identical"],
        "ok": outcome["resume_identical"],
    }
    if not outcome["resume_identical"]:
        failed.append("resume_identical: resumed ledger bytes diverged")

    REPORT_PATH.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"wrote {REPORT_PATH}")
    if failed:
        print("FAILED gates: " + "; ".join(failed), file=sys.stderr)
        return 1
    print("all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
