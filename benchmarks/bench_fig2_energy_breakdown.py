"""Fig. 2 bench: per-component energy breakdown across the seven games."""

from repro.analysis.fig2_energy_breakdown import run_fig2


def test_fig2_energy_breakdown(once):
    result = once(run_fig2, duration_s=60.0)
    print("\n=== Fig. 2: normalized energy breakdown ===")
    print(result.to_text())
    # Paper shape: sensors+memory < ~10%; CPU and IPs split the rest.
    for item in result.breakdowns:
        assert item.sensors_plus_memory < 0.12
        assert 0.30 < item.cpu < 0.65
        assert 0.30 < item.ip < 0.65
