"""Fig. 8 bench: the In.Event-only table is small but fatally wrong."""

from repro.analysis.fig8_event_only import run_fig8


def test_fig8_event_only_table(once):
    result = once(run_fig8, duration_s=120.0)
    print("\n=== Fig. 8: In.Event-only lookup table (AB Evolution) ===")
    print(result.to_text())
    assert result.size_ratio < 0.05                 # tiny vs naive
    assert 0.05 < result.stats.coverage < 0.60      # real coverage...
    assert result.stats.erroneous_fraction > 0.02   # ...but erroneous
    assert result.state_error_share > 0.5           # and fatally so
