"""Fig. 12 bench: continuous learning recovers from a bad profile."""

from repro.analysis.fig12_continuous_learning import run_fig12


def test_fig12_continuous_learning(once):
    result = once(
        run_fig12,
        game_name="ab_evolution",
        epochs=6,
        session_duration_s=20.0,
        initial_events=60,
        ramp=2.2,
    )
    print("\n=== Fig. 12: continuous learning (AB Evolution) ===")
    print(result.to_text())
    assert result.initial_error > 0.05   # starved profile misfires
    assert result.final_error < 0.01     # paper: < 0.1% eventually
    assert result.final_error < result.initial_error
