"""Table I bench: what each scheme family can reach at all."""

from repro.analysis.table1_optimization_scope import run_table1


def test_table1_optimization_scope(once):
    result = once(run_table1, duration_s=30.0)
    print("\n=== Table I: optimization scope (AB Evolution) ===")
    print(result.to_text())
    # Each partial family reaches only a sliver of the handler energy.
    assert result.cpu_func_energy_fraction < 0.30
    assert result.ip_call_energy_fraction < 0.30
    assert result.whole_chain_fraction == 1.0
