"""Extension bench: SNIP saves on the CPU and the IPs simultaneously.

The Table I argument, measured: unlike the partial schemes, SNIP's
savings land in both big ledger groups at once.
"""

from repro.analysis.component_savings import run_component_savings
from repro.soc.component import ComponentGroup


def test_component_savings(once):
    result = once(run_component_savings, duration_s=45.0)
    print("\n=== SNIP savings by component group (AB Evolution) ===")
    print(result.to_text())
    # Both halves of the SoC benefit materially...
    assert result.savings_fraction(ComponentGroup.CPU) > 0.15
    assert result.savings_fraction(ComponentGroup.IP) > 0.15
    # ...and memory traffic shrinks too (inputs/outputs not moved).
    assert result.saved_joules(ComponentGroup.MEMORY) > 0.0
    assert 0.15 < result.total_savings_fraction < 0.45
