"""Fig. 4 bench: 17-43% of user events are useless; energy is wasted."""

from repro.analysis.fig4_useless_events import run_fig4


def test_fig4_useless_events(once):
    result = once(run_fig4, duration_s=60.0)
    print("\n=== Fig. 4: useless user events ===")
    print(result.to_text())
    for row in result.rows:
        assert 0.10 < row.useless_fraction < 0.50
        assert row.wasted_energy_fraction > 0.0
    assert result.max_useless_game == "ab_evolution"  # the catapult case
