"""Ablation: the contribution of on-device continuous learning.

SNIP's runtime promotes recurring contexts into the table as the user
plays (the paper's Option-2 loop at event granularity). Disabling it
shows how much coverage the shipped profile alone provides.
"""

from repro.core.config import SnipConfig
from repro.core.profiler import CloudProfiler
from repro.core.runtime import SnipRuntime
from repro.games.registry import GAME_CONTENT_SEED, create_game
from repro.soc.soc import snapdragon_821
from repro.users.sessions import run_baseline_session
from repro.users.tracegen import generate_events

GAME = "candy_crush"
DURATION = 45.0


def _run(table, config):
    soc = snapdragon_821()
    game = create_game(GAME, seed=GAME_CONTENT_SEED)
    runtime = SnipRuntime(soc, game, table, config)
    clock = 0.0
    for event in generate_events(GAME, seed=9, duration_s=DURATION):
        if event.timestamp > clock:
            soc.advance_time(event.timestamp - clock)
            clock = event.timestamp
        runtime.deliver(event)
    soc.advance_time(max(0.0, DURATION - clock))
    return runtime, soc


def test_ablation_online_warmup(once):
    def run_variants():
        base_config = SnipConfig()
        package = CloudProfiler(base_config).build_package_from_sessions(
            GAME, seeds=[1, 2], duration_s=45.0
        )
        baseline = run_baseline_session(GAME, seed=9, duration_s=DURATION)
        rows = {}
        for warmup in (0, 2, 4):
            config = SnipConfig(online_warmup=warmup)
            runtime, soc = _run(package.table.clone(), config)
            savings = 1 - soc.meter.total_joules / baseline.report.total_joules
            rows[warmup] = (savings, runtime.stats.coverage,
                            runtime.stats.online_promotions)
        return rows

    rows = once(run_variants)
    print("\n=== Ablation: online-learning warmup (candy_crush) ===")
    for warmup, (savings, coverage, promotions) in rows.items():
        print(f"warmup={warmup}: savings={savings:6.1%} "
              f"coverage={coverage:6.1%} promotions={promotions}")
    # Online learning contributes real coverage on evolving boards...
    assert rows[2][1] > rows[0][1]
    # ...and a longer warmup trades coverage for caution.
    assert rows[4][2] <= rows[2][2] or rows[4][1] <= rows[2][1] + 1e-9
