"""Ablation: sensor capture resolution vs. memoization opportunity."""

from repro.analysis.ablation_quantization import run_quantization_ablation


def test_ablation_quantization(once):
    result = once(run_quantization_ablation, duration_s=60.0)
    print("\n=== Ablation: event quantization (AB Evolution) ===")
    print(result.to_text())
    repeats = [point.repeat_fraction for point in result.points]
    keys = [point.distinct_keys for point in result.points]
    # Coarser capture -> fewer distinct keys -> more repeats...
    assert keys == sorted(keys, reverse=True)
    assert repeats == sorted(repeats)
    # ...but also more ambiguity (different outputs behind one key).
    assert result.points[-1].ambiguous_fraction >= result.points[0].ambiguous_fraction
