"""Microbenchmarks for the SnipPackage registry (standalone script).

Times the registry's three hot operations — publishing a candidate,
running the promotion pass over a populated slot, and resolving the
champion package — on a slot pre-loaded with versions, checks the
throughput gates, and writes ``BENCH_registry.json`` at the repo root.

The registry sits on a fleet's control path (every staged rollout loads
state, judges, and re-saves), so these floors guard against the state
document or the promotion pass picking up accidental quadratic work as
slots grow.

Run directly (CI's perf-smoke job uses ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_registry.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

from repro.core.config import SnipConfig
from repro.core.profiler import CloudProfiler
from repro.registry import PackageRegistry, PromotionPolicy
from repro.registry.records import PackageMetrics

REPO_ROOT = Path(__file__).resolve().parent.parent
REPORT_PATH = REPO_ROOT / "BENCH_registry.json"

GAME = "candy_crush"


def _metrics(index: int) -> PackageMetrics:
    """Monotonically improving metrics, so every promote pass wins."""
    return PackageMetrics(
        hit_rate=0.90,
        selection_accuracy=0.999,
        selected_fields=4,
        table_entries=12,
        table_bytes=624,
        energy_saved_fraction=0.20 + 0.001 * index,
    )


def bench_registry(quick: bool) -> dict:
    versions = 16 if quick else 64
    lookups = 20 if quick else 100
    config = SnipConfig()
    package = CloudProfiler(config, cache=None).build_package_from_sessions(
        GAME, seeds=[1], duration_s=8.0
    )
    root = tempfile.mkdtemp(prefix="bench-registry-")
    try:
        registry = PackageRegistry(root)
        # -- publish: one state rewrite + one payload store per call.
        start = time.perf_counter()
        for index in range(versions):
            entry, created = registry.publish(
                GAME, config, package, _metrics(index),
                source_digest=f"bench{index:027d}",
            )
            assert created, "synthetic digests must never collide"
        publish_s = time.perf_counter() - start

        # -- promote: judge + apply over the ever-growing slot.
        policy = PromotionPolicy()
        start = time.perf_counter()
        promoted = 0
        for index in range(versions):
            decision = registry.promote(
                GAME, config, version=index + 1, policy=policy
            )
            promoted += decision.promoted
        promote_s = time.perf_counter() - start
        assert promoted == versions, "ascending metrics must always win"

        # -- lookup: resolve the champion entry to its live package.
        start = time.perf_counter()
        for _ in range(lookups):
            state = registry.load_state(GAME, config)
            resolved = registry.load_package(state.champion())
            assert resolved.game_name == GAME
        lookup_s = time.perf_counter() - start

        return {
            "versions": versions,
            "publish_ops_s": versions / publish_s,
            "promote_ops_s": versions / promote_s,
            "lookup_ops_s": lookups / lookup_s,
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller slot and relaxed gates (CI smoke mode)",
    )
    args = parser.parse_args(argv)
    quick = args.quick

    # Floors sit far under measured throughput (hundreds to thousands
    # of ops/s on an idle machine) so only a real regression — e.g.
    # state handling going quadratic — trips them on shared CI runners.
    gates = {
        "publish_ops_s": 5.0 if quick else 10.0,
        "promote_ops_s": 10.0 if quick else 20.0,
        "lookup_ops_s": 5.0 if quick else 10.0,
    }

    outcome = bench_registry(quick)
    results = {"quick": quick, "benchmarks": {"registry": outcome}, "gates": {}}
    for name in ("publish_ops_s", "promote_ops_s", "lookup_ops_s"):
        print(f"{name:16s} {outcome[name]:8.1f} ops/s", flush=True)

    failed = []
    for name, floor in gates.items():
        measured = outcome[name]
        ok = measured >= floor
        results["gates"][name] = {"floor": floor, "measured": measured, "ok": ok}
        if not ok:
            failed.append(f"{name}: {measured:.1f} < {floor:.1f} ops/s")

    REPORT_PATH.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"wrote {REPORT_PATH}")
    if failed:
        print("FAILED gates: " + "; ".join(failed), file=sys.stderr)
        return 1
    print("all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
