"""Extension bench: federated table building (paper Sec. VII-C).

The paper flags its backend cost (~2 days of Xeon time per 2 minutes of
trace) and proposes federated learning. This bench quantifies the
implemented direction: devices upload per-key statistics instead of raw
events, the cloud merges without any replay, and a brand-new user is
served by the fleet table immediately.
"""

from repro.core.config import SnipConfig
from repro.core.federated import federate
from repro.core.profiler import CloudProfiler
from repro.core.runtime import SnipRuntime
from repro.games.registry import GAME_CONTENT_SEED, create_game
from repro.soc.soc import snapdragon_821
from repro.users.population import Population
from repro.users.sessions import run_baseline_session
from repro.users.tracegen import generate_events

GAME = "candy_crush"
DEVICES = 4
SESSION_S = 30.0


def test_extension_federated_fleet(once):
    def run():
        config = SnipConfig()
        package = CloudProfiler(config).build_package_from_sessions(
            GAME, seeds=[1], duration_s=SESSION_S
        )
        population = Population(seed=11)
        per_device = {
            device_id: [
                population.user_trace(GAME, device_id, session, SESSION_S)
                for session in range(2)
            ]
            for device_id in range(DEVICES)
        }
        fleet_table, uplink = federate(
            GAME, per_device, package.selection, config
        )
        soc = snapdragon_821()
        runtime = SnipRuntime(
            soc, create_game(GAME, seed=GAME_CONTENT_SEED), fleet_table, config
        )
        clock = 0.0
        for event in generate_events(GAME, seed=123, duration_s=SESSION_S):
            if event.timestamp > clock:
                soc.advance_time(event.timestamp - clock)
                clock = event.timestamp
            runtime.deliver(event)
        soc.advance_time(max(0.0, SESSION_S - clock))
        baseline = run_baseline_session(GAME, seed=123, duration_s=SESSION_S)
        savings = 1 - soc.meter.total_joules / baseline.report.total_joules
        return {
            "entries": fleet_table.entry_count,
            "uplink_bytes": uplink,
            "new_user_hit_rate": runtime.stats.hit_rate,
            "new_user_savings": savings,
            "centralized_backend_seconds": package.backend_seconds,
        }

    result = once(run)
    print("\n=== Extension: federated fleet (candy_crush) ===")
    for key, value in result.items():
        print(f"{key}: {value}")
    # A fresh user is served by collective experience out of the box...
    assert result["new_user_hit_rate"] > 0.5
    assert result["new_user_savings"] > 0.15
    # ...while the cloud does no emulation at all (vs days centrally).
    assert result["centralized_backend_seconds"] > 3600
    assert result["entries"] > 0
