"""Fleet-engine scaling: constant-memory streaming at up to 1M devices.

Runs the streaming fleet engine at increasing device counts — each
scale in its own subprocess so ``ru_maxrss`` measures that scale alone —
and gates two properties:

* **throughput**: devices simulated per second stays above a floor at
  every scale (the fold must not degrade as the sweep grows);
* **peak RSS**: memory grows sub-linearly in devices (the 10x-device
  jump may cost at most a small constant factor), and stays under an
  absolute ceiling — the observable proof that shard results are folded
  and dropped rather than collected.

* **batch speedup**: the columnar session fast path sustains at least
  ``BATCH_SPEEDUP_FLOOR``x the scalar engine's recorded throughput
  floor at the steady-state (largest) scale.

Also re-checks the engine's core guarantees at benchmark scale: serial
and queue-executor runs render byte-identical reports, and the batched
pipeline renders the same report as the scalar ``*_reference`` path.
Writes ``BENCH_fleet.json`` at the repo root.

Run directly (CI's perf-smoke job uses ``--quick``; the full run
simulates 1,000,000 devices)::

    PYTHONPATH=src python benchmarks/bench_fleet_scaling.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
REPORT_PATH = REPO_ROOT / "BENCH_fleet.json"

#: Scales per mode: a 10x device jump whose RSS ratio is gated.
QUICK_SCALES = (2_000, 20_000)
FULL_SCALES = (100_000, 1_000_000)

#: Shards stay this size at every scale, so per-shard memory is flat
#: and only the engine's buffering could grow with the fleet.
SHARD_SIZE = 500
MAX_LIVE_SHARDS = 8

#: Recorded steady-state throughput of the scalar (pre-columnar) engine
#: at this exact spec — the 1M-device serial sweep in the BENCH_fleet
#: history before the batched session pipeline landed.
SCALAR_FLOOR_DEVICES_PER_S = 525.3713084465782

#: The batched pipeline must beat the scalar floor by at least this
#: factor at the steady-state (largest) scale. The smallest scale runs
#: in a cold subprocess whose process-wide fold/event memos warm over
#: the first few hundred devices, so it under-reads steady state.
BATCH_SPEEDUP_FLOOR = 5.0


def _build_spec(devices: int):
    from repro.fleet import FleetSpec

    # Federation on, energy off: the reduction path (contributions,
    # census, totals) is what scales; the tripled energy replays would
    # only multiply wall time without touching more of the engine.
    return FleetSpec(
        game_name="candy_crush",
        devices=devices,
        sessions_per_device=1,
        duration_s=0.25,
        seed=11,
        shard_size=min(SHARD_SIZE, devices),
        profile_seeds=(1,),
        profile_duration_s=3.0,
        measure_energy=False,
        federate=True,
    )


def _worker(devices: int) -> int:
    """One scale, measured in isolation: prints a JSON line to stdout."""
    from repro.fleet import FleetEngine, TelemetryBus, peak_rss_bytes

    spec = _build_spec(devices)
    telemetry = TelemetryBus(history_limit=64)
    engine = FleetEngine(
        spec,
        telemetry=telemetry,
        cache=None,
        max_live_shards=MAX_LIVE_SHARDS,
    )
    engine.build_package()  # profile outside the timed window
    start = time.perf_counter()
    report = engine.run()
    wall_s = time.perf_counter() - start
    counters = telemetry.counters
    print(
        json.dumps(
            {
                "devices": devices,
                "shards": spec.shard_count,
                "events": report.totals.events,
                "wall_s": wall_s,
                "devices_per_s": devices / wall_s,
                "peak_rss_bytes": peak_rss_bytes(),
                "peak_live_shards": counters.peak_live_shards,
                "worker_failures": counters.worker_failures,
                "table_entries": report.table_entries,
            }
        )
    )
    return 0


def _run_scale(devices: int) -> dict:
    """Run one scale in a fresh subprocess for a clean ru_maxrss."""
    command = [
        sys.executable,
        str(Path(__file__).resolve()),
        "--worker",
        str(devices),
    ]
    completed = subprocess.run(
        command, capture_output=True, text=True, cwd=str(REPO_ROOT)
    )
    if completed.returncode != 0:
        raise RuntimeError(
            f"scale {devices} failed:\n{completed.stdout}\n{completed.stderr}"
        )
    return json.loads(completed.stdout.strip().splitlines()[-1])


def _equivalence_check() -> dict:
    """Serial, queue-executor, and scalar runs must render byte-identical
    reports."""
    from repro.core.fastpath import (
        batching_enabled,
        disable_batching,
        enable_batching,
    )
    from repro.fleet import FleetEngine, QueueFleetExecutor

    spec = _build_spec(64)
    serial = FleetEngine(spec, cache=None).run()
    queued = FleetEngine(
        spec,
        executor=QueueFleetExecutor(jobs=2),
        cache=None,
        max_live_shards=MAX_LIVE_SHARDS,
    ).run()
    executors_identical = (
        serial.to_text() == queued.to_text()
        and serial.to_json() == queued.to_json()
    )
    restore = batching_enabled()
    disable_batching()
    try:
        scalar = FleetEngine(spec, cache=None).run()
    finally:
        if restore:
            enable_batching()
    scalar_identical = (
        serial.to_text() == scalar.to_text()
        and serial.to_json() == scalar.to_json()
    )
    return {
        "devices": spec.devices,
        "identical": executors_identical,
        "scalar_identical": scalar_identical,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller scales and relaxed gates (CI smoke mode)",
    )
    parser.add_argument(
        "--worker", type=int, default=None, metavar="DEVICES",
        help=argparse.SUPPRESS,  # internal: run one isolated scale
    )
    args = parser.parse_args(argv)
    if args.worker is not None:
        sys.path.insert(0, str(REPO_ROOT / "src"))
        return _worker(args.worker)

    sys.path.insert(0, str(REPO_ROOT / "src"))
    quick = args.quick
    scales = QUICK_SCALES if quick else FULL_SCALES
    gates = {
        # Conservative floors: one CI core sustains several hundred
        # devices/sec at these session settings.
        "min_devices_per_s": 60.0,
        # 10x the devices may cost at most this factor in peak RSS —
        # the sub-linear-memory proof. (Linear growth would be ~10x.)
        "max_rss_growth": 3.0,
        "max_rss_bytes": 800_000_000 if quick else 1_500_000_000,
    }

    results = {
        "quick": quick,
        "shard_size": SHARD_SIZE,
        "max_live_shards": MAX_LIVE_SHARDS,
        "scales": [],
        "gates": {},
    }

    equivalence = _equivalence_check()
    results["equivalence"] = equivalence
    print(
        f"equivalence: serial vs queue at {equivalence['devices']} devices "
        f"-> {'identical' if equivalence['identical'] else 'DIVERGED'}; "
        "batched vs scalar -> "
        f"{'identical' if equivalence['scalar_identical'] else 'DIVERGED'}",
        flush=True,
    )

    for devices in scales:
        outcome = _run_scale(devices)
        results["scales"].append(outcome)
        print(
            f"{devices:>9,d} devices: {outcome['devices_per_s']:7.0f} dev/s, "
            f"peak RSS {outcome['peak_rss_bytes'] / 1e6:7.1f} MB, "
            f"live shards <= {outcome['peak_live_shards']}",
            flush=True,
        )

    failed = []
    if not equivalence["identical"]:
        failed.append("equivalence: serial and queue reports diverged")
    if not equivalence["scalar_identical"]:
        failed.append("equivalence: batched and scalar reports diverged")
    worst_throughput = min(s["devices_per_s"] for s in results["scales"])
    throughput_ok = worst_throughput >= gates["min_devices_per_s"]
    results["gates"]["throughput"] = {
        "floor": gates["min_devices_per_s"],
        "worst_devices_per_s": worst_throughput,
        "ok": throughput_ok,
    }
    if not throughput_ok:
        failed.append(
            f"throughput: {worst_throughput:.0f} dev/s < "
            f"{gates['min_devices_per_s']:.0f} dev/s"
        )

    first, last = results["scales"][0], results["scales"][-1]
    growth = last["peak_rss_bytes"] / max(first["peak_rss_bytes"], 1)
    device_ratio = last["devices"] / first["devices"]
    growth_ok = growth <= gates["max_rss_growth"]
    results["gates"]["rss_growth"] = {
        "ceiling": gates["max_rss_growth"],
        "device_ratio": device_ratio,
        "rss_ratio": growth,
        "ok": growth_ok,
    }
    if not growth_ok:
        failed.append(
            f"rss growth: {growth:.2f}x over a {device_ratio:.0f}x device "
            f"jump (ceiling {gates['max_rss_growth']:.1f}x)"
        )

    worst_rss = max(s["peak_rss_bytes"] for s in results["scales"])
    ceiling_ok = worst_rss <= gates["max_rss_bytes"]
    results["gates"]["rss_ceiling"] = {
        "ceiling_bytes": gates["max_rss_bytes"],
        "worst_bytes": worst_rss,
        "ok": ceiling_ok,
    }
    if not ceiling_ok:
        failed.append(
            f"rss ceiling: {worst_rss / 1e6:.0f} MB > "
            f"{gates['max_rss_bytes'] / 1e6:.0f} MB"
        )

    steady = results["scales"][-1]["devices_per_s"]
    speedup = steady / SCALAR_FLOOR_DEVICES_PER_S
    speedup_ok = speedup >= BATCH_SPEEDUP_FLOOR
    results["gates"]["batch_speedup"] = {
        "floor": BATCH_SPEEDUP_FLOOR,
        "scalar_devices_per_s": SCALAR_FLOOR_DEVICES_PER_S,
        "steady_devices_per_s": steady,
        "speedup": speedup,
        "ok": speedup_ok,
    }
    if not speedup_ok:
        failed.append(
            f"batch speedup: {speedup:.2f}x over the scalar floor "
            f"(floor {BATCH_SPEEDUP_FLOOR:.1f}x)"
        )

    # The gauge samples at the buffer's high-water mark, right after a
    # shard is inserted and before the fold drains it — so a run that
    # buffers nothing still peaks at 1, and an executor keeping
    # MAX_LIVE_SHARDS in flight transiently shows one more.
    buffer_ok = all(
        1 <= s["peak_live_shards"] <= MAX_LIVE_SHARDS + 1
        for s in results["scales"]
    )
    results["gates"]["bounded_buffer"] = {
        "ceiling": MAX_LIVE_SHARDS + 1,
        "peaks": [s["peak_live_shards"] for s in results["scales"]],
        "ok": buffer_ok,
    }
    if not buffer_ok:
        failed.append(
            "bounded buffer: live-shard peak outside [1, max_live_shards + 1]"
        )

    failures_ok = all(s["worker_failures"] == 0 for s in results["scales"])
    if not failures_ok:
        failed.append("worker failures occurred during the sweep")

    REPORT_PATH.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"wrote {REPORT_PATH}")
    if failed:
        print("FAILED gates: " + "; ".join(failed), file=sys.stderr)
        return 1
    print("all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
