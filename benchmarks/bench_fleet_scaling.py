"""Fleet-engine scaling: simulated-event throughput at 1/2/4 workers.

Runs the same small fleet spec through the serial executor and through
2- and 4-worker process pools, recording events/sec from the telemetry
bus (run with ``-s`` to see the table). Beyond the timing, this pins the
engine's core guarantee at benchmark scale: every job count renders the
byte-identical aggregate report.
"""

from __future__ import annotations

import pytest

from repro.fleet import FleetEngine, FleetSpec, TelemetryBus, make_executor

SPEC = FleetSpec(
    game_name="candy_crush",
    devices=16,
    sessions_per_device=1,
    duration_s=8.0,
    seed=7,
    shard_size=2,
    profile_seeds=(1,),
    profile_duration_s=10.0,
)

_reports = {}


@pytest.mark.parametrize("jobs", [1, 2, 4])
def test_fleet_scaling(once, jobs):
    telemetry = TelemetryBus()

    def run():
        engine = FleetEngine(SPEC, executor=make_executor(jobs), telemetry=telemetry)
        return engine.run()

    report = once(run)
    snapshot = telemetry.snapshot()
    print(
        f"\nfleet scaling: jobs={jobs} -> "
        f"{snapshot['events_processed']} events, "
        f"{snapshot['events_per_second']:.0f} ev/s "
        f"({snapshot['shards_done']} shards)"
    )
    assert snapshot["events_processed"] > 0
    assert snapshot["worker_failures"] == 0
    _reports[jobs] = report.to_text()
    # Whatever the worker count, the aggregate is byte-identical.
    assert len(set(_reports.values())) == 1
