"""Fig. 9 bench: PFI trims the input record to a sliver of bytes."""

from repro.analysis.fig9_pfi_trimming import run_fig9
from repro.games.base import InputCategory


def test_fig9_pfi_trimming(once):
    result = once(run_fig9, seeds=(1, 2), duration_s=45.0)
    print("\n=== Fig. 9: PFI trimming walk (AB Evolution) ===")
    print(result.to_text())
    assert result.points[0].error < 1e-9          # full record: exact
    assert result.necessary_fraction < 0.02       # paper: ~0.2%
    assert result.necessary_bytes < 4096          # paper: ~1.2 kB
    assert result.points[-1].error > 0.25         # cliff past necessary
    assert result.necessary_category_bytes[InputCategory.EVENT] > 0
