"""Extension bench: the runtime quality-control loop (Sec. VII-B).

Drives one healthy and one deliberately poisoned SNIP runtime under the
quality controller and shows the safety valves working: the healthy
table keeps its savings, the poisoned one is caught by audits, cleared,
and eventually disabled rather than corrupting the game.
"""

from repro.core.config import SnipConfig
from repro.core.profiler import CloudProfiler
from repro.core.quality import QualityController
from repro.core.runtime import SnipRuntime
from repro.core.table import TableEntry
from repro.games.base import FieldWrite, OutputCategory
from repro.games.registry import GAME_CONTENT_SEED, create_game
from repro.soc.soc import snapdragon_821
from repro.users.tracegen import generate_events

GAME = "ab_evolution"
DURATION = 30.0


def _drive(controller):
    soc = controller.runtime.soc
    clock = 0.0
    for event in generate_events(GAME, 7, DURATION):
        if event.timestamp > clock:
            soc.advance_time(event.timestamp - clock)
            clock = event.timestamp
        controller.deliver(event)


def _poison(table):
    for event_type in list(table._entries):
        for key, entry in list(table._entries[event_type].items()):
            bad = tuple(
                FieldWrite(w.name, w.category, ("junk", w.value), w.nbytes, True)
                for w in entry.writes
            ) or (FieldWrite("hist:junk", OutputCategory.HISTORY, 0, 4, True),)
            table.install_entry(
                event_type, key, TableEntry(bad, entry.avg_cycles, 1.0)
            )
    return table


def test_extension_quality_control(once):
    def run():
        config = SnipConfig()
        package = CloudProfiler(config).build_package_from_sessions(
            GAME, seeds=[1, 2], duration_s=30.0
        )
        healthy = QualityController(
            SnipRuntime(snapdragon_821(), create_game(GAME, GAME_CONTENT_SEED),
                        package.table.clone(), config),
            audit_rate=0.3, clear_threshold=0.25,
        )
        _drive(healthy)
        poisoned = QualityController(
            SnipRuntime(snapdragon_821(), create_game(GAME, GAME_CONTENT_SEED),
                        _poison(package.table.clone()),
                        SnipConfig(online_warmup=0)),
            audit_rate=0.5, window=20, clear_threshold=0.2, max_clears=1,
        )
        _drive(poisoned)
        return healthy.report(), poisoned.report()

    healthy, poisoned = once(run)
    print("\n=== Extension: quality control (AB Evolution) ===")
    print(f"healthy : audits={healthy.audited_hits} "
          f"err={healthy.rolling_error:.1%} clears={healthy.clears} "
          f"enabled={healthy.snip_enabled}")
    print(f"poisoned: audits={poisoned.audited_hits} "
          f"errors={poisoned.audit_errors} clears={poisoned.clears} "
          f"enabled={poisoned.snip_enabled}")
    # The healthy runtime survives (an early transient may trigger at
    # most a precautionary clear; online learning refills the table).
    assert healthy.snip_enabled
    assert healthy.rolling_error < 0.25
    # The poisoned runtime is caught immediately.
    assert poisoned.audit_errors > 0
    assert poisoned.clears >= 1 or not poisoned.snip_enabled
