"""Fig. 3 bench: battery drain from idle (~20 h) down to 3D games (~3 h)."""

from repro.analysis.fig3_battery_drain import run_fig3


def test_fig3_battery_drain(once):
    result = once(run_fig3, duration_s=60.0)
    print("\n=== Fig. 3: battery drain ===")
    print(result.to_text())
    assert 15.0 < result.idle_hours < 25.0
    hours = [row.battery_hours for row in result.rows]
    assert hours == sorted(hours, reverse=True)  # complexity ordering
    assert 7.0 < result.by_game()["colorphun"].battery_hours < 11.0
    assert 2.5 < result.by_game()["race_kings"].battery_hours < 4.5
    assert result.drain_speedup_vs_idle > 4.0  # paper: ~6x faster
