"""Microbenchmarks for the vectorized hot path (standalone script).

Times the optimised implementations against their in-source golden
references — batched tree/forest prediction vs. per-row walks, in-place
permutation importance vs. the full-matrix-copy variant, compiled
runtime probes vs. per-event string parsing, and a warm package-cache
``SnipScheme.prepare`` vs. a cold profile — checks the equivalence and
speedup gates, and writes ``BENCH_hotpath.json`` at the repo root.

Run directly (CI's perf-smoke job uses ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_hotpath.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import pickle
import shutil
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.config import SnipConfig
from repro.core.package_cache import PackageCache
from repro.core.profiler import CloudProfiler
from repro.core.runtime import SnipRuntime
from repro.games.registry import GAME_CONTENT_SEED, create_game
from repro.ml.forest import RandomForestClassifier
from repro.ml.permutation import (
    permutation_importance,
    permutation_importance_reference,
)
from repro.ml.tree import DecisionTreeClassifier
from repro.schemes.snip_scheme import SnipScheme
from repro.soc.soc import snapdragon_821
from repro.users.tracegen import generate_events

REPO_ROOT = Path(__file__).resolve().parent.parent
REPORT_PATH = REPO_ROOT / "BENCH_hotpath.json"


def _time(fn, repeats: int) -> float:
    """Best-of-``repeats`` wall time of ``fn()`` in seconds."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _synthetic(rows: int, cols: int, classes: int = 5):
    rng = np.random.default_rng(42)
    features = rng.normal(size=(rows, cols))
    # Labels depend on a few columns so the trees have structure to find.
    labels = (
        (features[:, 0] > 0).astype(np.int64)
        + 2 * (features[:, 1] + features[:, 2] > 0).astype(np.int64)
    ) % classes
    weights = rng.integers(1, 1000, size=rows).astype(np.float64)
    return features, labels, weights


def bench_tree_predict(quick: bool, repeats: int) -> dict:
    rows, cols = (300, 32) if quick else (1000, 64)
    features, labels, weights = _synthetic(rows, cols)
    tree = DecisionTreeClassifier(max_depth=14, min_samples_leaf=2, seed=3)
    tree.fit(features, labels, weights)
    fast = tree.predict(features)
    reference = tree.predict_reference(features)
    assert np.array_equal(fast, reference), "tree predict diverged from reference"
    fast_s = _time(lambda: tree.predict(features), repeats)
    ref_s = _time(lambda: tree.predict_reference(features), repeats)
    return {"fast_s": fast_s, "reference_s": ref_s, "speedup": ref_s / fast_s}


def bench_forest_predict(quick: bool, repeats: int) -> dict:
    rows, cols = (300, 32) if quick else (1000, 64)
    trees = 10 if quick else 25
    features, labels, weights = _synthetic(rows, cols)
    forest = RandomForestClassifier(
        n_trees=trees, max_depth=14, min_samples_leaf=2, seed=3
    )
    forest.fit(features, labels, weights)
    fast = forest.predict(features)
    reference = forest.predict_reference(features)
    assert np.array_equal(fast, reference), "forest predict diverged from reference"
    fast_s = _time(lambda: forest.predict(features), repeats)
    ref_s = _time(lambda: forest.predict_reference(features), repeats)
    return {"fast_s": fast_s, "reference_s": ref_s, "speedup": ref_s / fast_s}


class _SeedPredictModel:
    """A forest restricted to its per-row reference walks.

    The PFI baseline must reproduce the *seed* cost profile — full
    feature-matrix copies feeding per-row tree descents — otherwise the
    reference run would silently benefit from the vectorized arena.
    """

    def __init__(self, forest: RandomForestClassifier) -> None:
        self._forest = forest

    def predict(self, features: np.ndarray) -> np.ndarray:
        return self._forest.predict_reference(features)


def bench_pfi(quick: bool, repeats: int) -> dict:
    rows, cols = (300, 32) if quick else (1000, 64)
    trees = 10 if quick else 25
    features, labels, weights = _synthetic(rows, cols)
    names = [f"f{index}" for index in range(cols)]
    forest = RandomForestClassifier(
        n_trees=trees, max_depth=14, min_samples_leaf=2, seed=3
    )
    forest.fit(features, labels, weights)

    def run_fast():
        return permutation_importance(
            forest, features, labels, names,
            rng=np.random.default_rng(7), repeats=2, sample_weight=weights,
        )

    def run_reference():
        return permutation_importance_reference(
            _SeedPredictModel(forest), features, labels, names,
            rng=np.random.default_rng(7), repeats=2, sample_weight=weights,
        )

    assert run_fast() == run_reference(), "PFI diverged from reference"
    fast_s = _time(run_fast, repeats)
    ref_s = _time(run_reference, repeats)
    return {"fast_s": fast_s, "reference_s": ref_s, "speedup": ref_s / fast_s}


def bench_runtime_probe(quick: bool, repeats: int) -> dict:
    """Batched ``probe_batch`` vs the scalar key-build + lookup loop.

    The scalar reference is what ``deliver`` does per event without
    batching: parse the selection's field reads against the live event
    and probe the memo table once. ``probe_batch`` groups the session
    by event type, builds each type's key column with the compiled
    readers, and gathers the entries in one ``lookup_batch`` pass.
    """
    duration = 10.0 if quick else 30.0
    config = SnipConfig()
    package = CloudProfiler(config, cache=None).build_package_from_sessions(
        "candy_crush", seeds=[1], duration_s=duration
    )
    runtime = SnipRuntime(
        snapdragon_821(), create_game("candy_crush", GAME_CONTENT_SEED),
        package.table, config,
    )
    events = list(generate_events("candy_crush", seed=9, duration_s=duration))
    known = [event for event in events if package.table.knows(event.event_type)]
    table = package.table

    def run_fast():
        return runtime.probe_batch(known)

    def run_reference():
        return [
            table.lookup(event.event_type, runtime.live_key_reference(event))
            for event in known
        ]

    keys, entries, hit_mask = run_fast()
    reference_entries = run_reference()
    assert keys == [
        runtime.live_key_reference(event) for event in known
    ], "batched probe keys diverged from reference"
    assert entries == reference_entries, (
        "batched probe entries diverged from reference"
    )
    assert list(hit_mask) == [
        entry is not None for entry in reference_entries
    ], "batched hit mask diverged from reference"
    fast_s = _time(run_fast, repeats)
    ref_s = _time(run_reference, repeats)
    return {
        "events": len(known),
        "hits": int(hit_mask.sum()),
        "fast_s": fast_s,
        "reference_s": ref_s,
        "speedup": ref_s / fast_s,
    }


def bench_session_batch(quick: bool, repeats: int) -> dict:
    """Batched ``run_device`` vs the scalar ``run_device_reference``.

    Times the whole columnar session pipeline — structure-of-arrays
    trace assembly, batched dispatch and probes, columnar energy
    ledgers — against the per-event-object reference, after asserting
    every :class:`DeviceResult` pickles byte-identically.
    """
    from repro.core.config import SnipConfig as _SnipConfig
    from repro.fleet.spec import FleetSpec
    from repro.fleet.work import run_device, run_device_reference

    devices = 24 if quick else 64
    spec = FleetSpec(
        game_name="candy_crush",
        devices=devices,
        sessions_per_device=1,
        duration_s=0.25 if quick else 1.0,
        seed=11,
        shard_size=devices,
        profile_seeds=(1,),
        profile_duration_s=3.0,
        measure_energy=True,
        federate=True,
    )
    config = _SnipConfig()
    package = CloudProfiler(config, cache=None).build_package_from_sessions(
        spec.game_name,
        seeds=list(spec.profile_seeds),
        duration_s=spec.profile_duration_s,
    )

    def run_fast():
        return [
            run_device(device, spec, package.selection, package.table, config)
            for device in range(devices)
        ]

    def run_reference():
        return [
            run_device_reference(
                device, spec, package.selection, package.table, config
            )
            for device in range(devices)
        ]

    # Byte-identity first; this also warms the process-wide fold/event
    # memos so the timed window measures steady state.
    fast_results = run_fast()
    reference_results = run_reference()
    for fast_result, reference_result in zip(fast_results, reference_results):
        assert pickle.dumps(fast_result) == pickle.dumps(reference_result), (
            "batched DeviceResult diverged from reference"
        )
    fast_s = _time(run_fast, repeats)
    ref_s = _time(run_reference, repeats)
    return {
        "devices": devices,
        "fast_s": fast_s,
        "reference_s": ref_s,
        "speedup": ref_s / fast_s,
    }


def bench_package_cache(quick: bool) -> dict:
    seeds = (1,) if quick else (1, 2, 3)
    duration = 15.0 if quick else 45.0
    cache_dir = tempfile.mkdtemp(prefix="bench-hotpath-cache-")
    try:
        cache = PackageCache(cache_dir)

        def prepare():
            scheme = SnipScheme(
                profile_seeds=seeds, profile_duration_s=duration, cache=cache
            )
            return scheme.prepare("candy_crush")

        start = time.perf_counter()
        cold_package = prepare()
        cold_s = time.perf_counter() - start
        start = time.perf_counter()
        warm_package = prepare()
        warm_s = time.perf_counter() - start
        assert warm_package.table_bytes == cold_package.table_bytes
        assert warm_package.profile_events == cold_package.profile_events
        return {"cold_s": cold_s, "warm_s": warm_s, "speedup": cold_s / warm_s}
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller inputs and relaxed gates (CI smoke mode)",
    )
    args = parser.parse_args(argv)
    quick = args.quick
    repeats = 3 if quick else 5

    # Quick mode checks only that the fast paths *win*; the full run
    # enforces the headline speedup floors from the issue.
    gates = {
        "forest_predict": 1.5 if quick else 5.0,
        "pfi": 1.5 if quick else 3.0,
        # The session/probe references share the process-wide fold and
        # event memos with the batched path, so these floors gate the
        # *residual* columnar win (trace assembly, batched dispatch,
        # grouped lookups, columnar ledger); the end-to-end ≥5x gate
        # against the recorded scalar floor lives in bench_fleet_scaling.
        "runtime_probe": 1.3 if quick else 1.6,
        "session_batch": 1.2 if quick else 1.4,
        "package_cache": 3.0 if quick else 10.0,
    }

    results = {"quick": quick, "benchmarks": {}, "gates": {}}
    sections = [
        ("tree_predict", lambda: bench_tree_predict(quick, repeats)),
        ("forest_predict", lambda: bench_forest_predict(quick, repeats)),
        ("pfi", lambda: bench_pfi(quick, repeats)),
        ("runtime_probe", lambda: bench_runtime_probe(quick, repeats)),
        ("session_batch", lambda: bench_session_batch(quick, repeats)),
        ("package_cache", lambda: bench_package_cache(quick)),
    ]
    for name, runner in sections:
        outcome = runner()
        results["benchmarks"][name] = outcome
        print(f"{name:16s} speedup {outcome['speedup']:6.1f}x", flush=True)

    failed = []
    for name, floor in gates.items():
        speedup = results["benchmarks"][name]["speedup"]
        ok = speedup >= floor
        results["gates"][name] = {"floor": floor, "speedup": speedup, "ok": ok}
        if not ok:
            failed.append(f"{name}: {speedup:.1f}x < {floor:.1f}x")

    REPORT_PATH.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"wrote {REPORT_PATH}")
    if failed:
        print("FAILED gates: " + "; ".join(failed), file=sys.stderr)
        return 1
    print("all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
