"""Fig. 11 bench: the headline evaluation across all seven games.

This is the heavyweight bench — it profiles every game, builds its SNIP
package, and runs five schemes per game.
"""

from repro.analysis.fig11_energy_benefits import run_fig11


def test_fig11_energy_benefits(once):
    result = once(run_fig11, duration_s=60.0)
    print("\n=== Fig. 11: energy benefits / coverage / overheads ===")
    print(result.to_text())
    print(f"\naverage snip savings: {result.average_savings('snip'):.1%}"
          f" (paper: ~32%)")
    print(f"average snip coverage: {result.average_coverage('snip'):.1%}"
          f" (paper: ~52%)")
    print(f"average extra battery: {result.average_extra_battery_hours:+.1f} h"
          f" (paper: ~+1.6 h)")
    for item in result.comparisons:
        # SNIP lands in the paper's 24-37% band (we allow slack).
        assert 0.15 < item.savings("snip") < 0.45, item.game_name
        # Partial schemes stay in single digits to low teens.
        assert item.savings("max_cpu") < 0.16, item.game_name
        assert item.savings("max_ip") < 0.16, item.game_name
        assert item.savings("snip") > item.savings("max_cpu")
        assert item.savings("snip") > item.savings("max_ip")
        # Coverage in the paper's 40-61% neighbourhood.
        assert 0.30 < item.coverage("snip") < 0.75, item.game_name
        # Lookup overheads stay small (paper avg ~3%).
        assert item.snip_overhead_fraction < 0.08, item.game_name
    assert 0.20 < result.average_savings("snip") < 0.40
    assert 0.40 < result.average_coverage("snip") < 0.65
    assert result.average_extra_battery_hours > 0.5
    by_game = result.by_game()
    # Race Kings sits at the bottom of the coverage ranking (paper: it
    # is the minimum at 40%; in our reproduction Chase Whisply's live
    # camera path contests it, so we assert bottom-two).
    ranked = sorted(result.comparisons, key=lambda item: item.coverage("snip"))
    assert "race_kings" in {item.game_name for item in ranked[:2]}
    # Candy Crush's idle shimmer makes it the most coverable (paper: 61%).
    assert by_game["candy_crush"].coverage("snip") == max(
        item.coverage("snip") for item in result.comparisons
    )
