"""Ablation: what the pieces of necessary-input selection contribute.

DESIGN.md calls out two selection design choices: the PFI model that
orders the greedy (forest vs. single tree vs. no model at all) and the
confidence gate. This bench quantifies both on AB Evolution.
"""

import numpy as np

from repro.core.config import SnipConfig
from repro.core.pfi import PfiAnalysis, run_pfi
from repro.core.profiler import CloudProfiler
from repro.core.selection import gated_table_stats, select_necessary_inputs
from repro.ml.permutation import FeatureImportance
from repro.users.tracegen import generate_trace


def _profile(config):
    profiler = CloudProfiler(config)
    traces = [generate_trace("ab_evolution", s, 45.0) for s in (1, 2)]
    return profiler.replay_traces("ab_evolution", traces)


def _selection_quality(analysis: PfiAnalysis, config) -> tuple:
    selection = select_necessary_inputs(analysis, config)
    coverage = 0.0
    total = 0.0
    for event_type, profile in analysis.profiles.items():
        stats = gated_table_stats(
            profile, selection.fields_for(event_type), config
        )
        coverage += stats.coverage * profile.total_cycles
        total += profile.total_cycles
    return coverage / total, selection.total_bytes


def test_ablation_pfi_model_choice(once):
    config = SnipConfig()
    records = _profile(config)

    def run_variants():
        results = {}
        # Full pipeline: forest-backed PFI ordering.
        forest = run_pfi(records, config)
        results["forest_pfi"] = _selection_quality(forest, config)
        # Single-tree PFI: cheaper, noisier ordering.
        tree_cfg = SnipConfig(forest_trees=1)
        results["single_tree_pfi"] = _selection_quality(
            run_pfi(records, tree_cfg), tree_cfg
        )
        # No model: alphabetical importance (exercise the exact-check
        # safety net without any learned ordering).
        rng = np.random.default_rng(0)
        blind = PfiAnalysis(
            profiles=forest.profiles,
            importances={
                event_type: [
                    FeatureImportance(info.name, i, rng.uniform())
                    for i, info in enumerate(profile.universe)
                ]
                for event_type, profile in forest.profiles.items()
            },
            models=forest.models,
        )
        results["random_order"] = _selection_quality(blind, config)
        return results

    results = once(run_variants)
    print("\n=== Ablation: selection under different PFI models ===")
    for name, (coverage, nbytes) in results.items():
        print(f"{name:18s} gated coverage={coverage:6.1%} key bytes={nbytes}")
    # The exact-statistics check keeps every variant *correct*; the
    # learned ordering buys coverage and/or byte economy.
    assert results["forest_pfi"][0] > 0.35
    assert results["forest_pfi"][0] >= results["random_order"][0] - 0.05
