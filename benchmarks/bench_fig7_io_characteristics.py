"""Fig. 7 bench: input/output size characteristics by category."""

from repro.analysis.fig7_io_characteristics import run_fig7


def test_fig7_io_characteristics(once):
    result = once(run_fig7, duration_s=120.0)
    print("\n=== Fig. 7: I/O characteristics (AB Evolution) ===")
    print(result.to_text())
    inputs = result.inputs
    assert inputs["in_event"].occurrence_fraction > 0.95   # ubiquitous
    assert inputs["in_event"].max_bytes <= 640             # 2-640 B
    assert inputs["in_history"].max_bytes > 50 * inputs["in_history"].min_bytes
    assert inputs["in_extern"].occurrence_fraction < 0.01  # rare
    assert inputs["in_extern"].max_bytes >= 1_000_000      # ~1 MB
    assert result.outputs["out_temp"].max_bytes <= 150     # small tiles
