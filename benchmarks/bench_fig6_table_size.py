"""Fig. 6 bench: the naive lookup table's size-vs-coverage explosion."""

from repro.analysis.fig6_table_size import run_fig6


def test_fig6_naive_table_size(once):
    result = once(run_fig6, duration_s=120.0)
    print("\n=== Fig. 6: naive lookup table size vs coverage ===")
    print(result.to_text())
    # Megabytes of table buy only single-digit coverage...
    assert result.final_bytes > 10_000_000
    assert result.final_coverage < 0.10
    # ...and at the paper's trace volume the table blows through the
    # phone's 4 GB memory almost immediately.
    crossing = result.exceeds_memory_at()
    assert crossing is not None and crossing < 0.05
