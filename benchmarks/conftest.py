"""Benchmark harness conventions.

Every benchmark regenerates one paper table/figure via its
:mod:`repro.analysis` driver, prints the same rows/series the paper
reports (run with ``-s`` to see them), and sanity-checks the paper's
qualitative shape. Drivers run once per benchmark
(``benchmark.pedantic(rounds=1)``): the measured quantity is the cost of
regenerating the experiment, not a microbenchmark.
"""

from __future__ import annotations

import pytest


@pytest.fixture()
def once(benchmark):
    """Run a driver exactly once under pytest-benchmark timing."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
